"""The Flow API: registry, contract enforcement, spec strings,
artifact cache sharing, and FlowResult introspection."""

import inspect

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST0
from repro.contest.problem import Solution
from repro.flows import (
    ALL_FLOWS,
    REGISTRY,
    TEAM_FLOW_NAMES,
    get_flow,
    resolve_spec,
)
from repro.flows.api import (
    ArtifactCache,
    Candidate,
    FinalizeSpec,
    Flow,
    Stage,
    check_flow_contract,
)
from repro.flows.registry import FlowSpec, parse_spec


def _trivial_flow(name: str) -> Flow:
    def stage(ctx):
        aig = AIG(ctx.problem.n_inputs)
        aig.set_output(CONST0)
        return [Candidate("const0", aig)]

    return Flow(
        name,
        team="test",
        efforts={"small": {}, "full": {}},
        stages=(Stage("const", stage),),
        finalize=None,
    )


@pytest.fixture
def scratch_flow():
    flow = REGISTRY.register(_trivial_flow("scratch-flow"))
    try:
        yield flow
    finally:
        REGISTRY.remove("scratch-flow")


class TestRegistry:
    def test_all_team_flows_and_portfolio_registered(self):
        names = set(REGISTRY.names())
        assert set(TEAM_FLOW_NAMES) <= names
        assert "portfolio" in names

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            REGISTRY.get("teamXX")

    def test_duplicate_registration_rejected(self, scratch_flow):
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register(_trivial_flow("scratch-flow"))

    def test_replace_allows_override(self, scratch_flow):
        replacement = _trivial_flow("scratch-flow")
        REGISTRY.register(replacement, replace=True)
        assert REGISTRY.get("scratch-flow") is replacement

    def test_non_flow_rejected(self):
        with pytest.raises(TypeError, match="Flow instances"):
            REGISTRY.register(lambda problem: None)

    def test_spec_like_name_rejected(self):
        with pytest.raises(ValueError, match="spec syntax"):
            REGISTRY.register(_trivial_flow("bad=name"))

    def test_all_flows_shim_matches_registry(self):
        assert set(ALL_FLOWS) == set(TEAM_FLOW_NAMES)
        for name in TEAM_FLOW_NAMES:
            assert ALL_FLOWS[name] is REGISTRY.get(name)

    def test_all_flows_access_warns_deprecation(self):
        from repro.flows import _DeprecatedFlowDict

        _DeprecatedFlowDict._warned = False
        with pytest.warns(DeprecationWarning, match="registry"):
            ALL_FLOWS["team01"]


class TestContract:
    """Satellite: the registry enforces the documented signature
    ``run(problem, effort="small", master_seed=0)`` for every flow —
    including the portfolio, whose historical signature violated it."""

    @pytest.mark.parametrize("name", sorted(REGISTRY.names()))
    def test_registered_flow_signature_conformance(self, name):
        flow = REGISTRY.get(name)
        check_flow_contract(flow.run, name)  # raises on violation
        params = list(inspect.signature(flow.run).parameters.values())
        assert [p.name for p in params[:3]] == [
            "problem", "effort", "master_seed"
        ]
        assert params[1].default == "small"
        assert params[2].default == 0
        for extra in params[3:]:
            assert extra.default is not inspect.Parameter.empty, (
                f"{name}: extra parameter {extra.name} needs a default"
            )

    def test_contract_rejects_wrong_leading_params(self):
        def bad(data, effort="small", master_seed=0):
            return None

        with pytest.raises(TypeError, match="leading parameters"):
            check_flow_contract(bad, "bad")

    def test_contract_rejects_wrong_defaults(self):
        def bad(problem, effort="full", master_seed=0):
            return None

        with pytest.raises(TypeError, match="effort"):
            check_flow_contract(bad, "bad")

    def test_contract_rejects_defaultless_extras(self):
        def bad(problem, effort="small", master_seed=0, jobs=None,
                flows=()):
            return None

        check_flow_contract(bad, "ok")  # defaults everywhere: fine

        def worse(problem, effort="small", master_seed=0, *, jobs):
            return None

        with pytest.raises(TypeError, match="jobs"):
            check_flow_contract(worse, "worse")

    def test_registration_runs_the_contract_check(self):
        class BadFlow(Flow):
            def run(self, problem, effort="full", master_seed=0):
                raise NotImplementedError

        bad = BadFlow(
            "bad-flow", team="t", efforts={"small": {}},
            stages=(Stage("s", lambda ctx: None),),
        )
        with pytest.raises(TypeError, match="effort"):
            REGISTRY.register(bad)
        assert "bad-flow" not in REGISTRY


class TestSpecStrings:
    def test_parse_plain_name(self):
        assert parse_spec("team01") == ("team01", {})

    def test_parse_overrides(self):
        name, overrides = parse_spec("portfolio:flows=a+b,jobs=4")
        assert name == "portfolio"
        assert overrides == {"flows": "a+b", "jobs": "4"}

    @pytest.mark.parametrize("bad", ["", ":effort=full", "team01:effort",
                                     "team01:effort=full,effort=small"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_resolve_plain_name_returns_flow(self):
        assert resolve_spec("team01") is REGISTRY.get("team01")

    def test_resolve_effort_override(self):
        spec = resolve_spec("team01:effort=full")
        assert isinstance(spec, FlowSpec)
        assert spec.flow is REGISTRY.get("team01")
        assert spec.overrides == {"effort": "full"}

    def test_resolve_rejects_unknown_effort(self):
        with pytest.raises(ValueError, match="no effort"):
            resolve_spec("team01:effort=huge")

    def test_resolve_rejects_undeclared_override(self):
        with pytest.raises(ValueError, match="override"):
            resolve_spec("team01:jobs=4")

    def test_portfolio_spec_params_coerced(self):
        spec = resolve_spec("portfolio:flows=team01+team10,jobs=2")
        assert spec.overrides == {"flows": ["team01", "team10"],
                                  "jobs": 2}

    def test_spec_override_wins_over_caller(self, scratch_flow,
                                            small_problem):
        calls = []

        def recording_stage(ctx):
            calls.append(ctx.effort)
            aig = AIG(ctx.problem.n_inputs)
            aig.set_output(CONST0)
            return [Candidate("c", aig)]

        REGISTRY.register(
            Flow("scratch-flow", team="t",
                 efforts={"small": {}, "full": {}},
                 stages=(Stage("s", recording_stage),), finalize=None),
            replace=True,
        )
        resolve_spec("scratch-flow:effort=full")(
            small_problem, effort="small"
        )
        assert calls == ["full"]

    def test_spec_pinned_kwargs_win_over_caller(self, small_problem):
        # Regression: every pinned override wins, not just effort — a
        # stored "portfolio:flows=..." spec must run exactly that spec.
        spec = resolve_spec("portfolio:flows=team10")
        solution = spec(small_problem, flows=["team07"])
        assert solution.metadata["selected_flow"] == "team10"

    def test_runner_resolve_flow_uses_registry(self):
        from repro.runner import resolve_flow

        assert resolve_flow("team01") is REGISTRY.get("team01")
        spec = resolve_flow("team01:effort=full")
        assert isinstance(spec, FlowSpec)
        # The dotted-path escape hatch for unregistered callables.
        dotted = resolve_flow("repro.flows.team01:run")
        from repro.flows import team01

        assert dotted is team01.run

    def test_flow_name_for_round_trips_registry_objects(self):
        from repro.runner import flow_name_for

        assert flow_name_for("team01", REGISTRY.get("team01")) == "team01"
        spec = resolve_spec("team01:effort=full")
        assert flow_name_for("anything", spec) == "team01:effort=full"


class TestArtifactCache:
    def test_miss_then_hit(self, small_problem):
        cache = ArtifactCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute(small_problem, "f", ("k",),
                                    compute) == 42
        assert cache.get_or_compute(small_problem, "f", ("k",),
                                    compute) == 42
        assert calls == [1]
        assert cache.stats()["f"] == {"hits": 1, "misses": 1}

    def test_none_is_a_cacheable_result(self, small_problem):
        cache = ArtifactCache()
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute(small_problem, "f", (), compute) is None
        assert cache.get_or_compute(small_problem, "f", (), compute) is None
        assert calls == [1]

    def test_problems_are_isolated(self, small_problem):
        from repro.contest import build_suite, make_problem

        other = make_problem(build_suite()[0], n_train=32, n_valid=32,
                             n_test=32)
        cache = ArtifactCache()
        cache.get_or_compute(small_problem, "f", (), lambda: "a")
        assert cache.get_or_compute(other, "f", (), lambda: "b") == "b"
        assert len(cache) == 2

    def test_dataset_digest_distinguishes_content(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.ones((4, 4), dtype=np.uint8)
        assert (ArtifactCache.dataset_digest(a)
                != ArtifactCache.dataset_digest(b))
        assert (ArtifactCache.dataset_digest(a, b)
                == ArtifactCache.dataset_digest(a.copy(), b.copy()))

    def test_dataset_digest_is_boundary_and_shape_sensitive(self):
        # Same concatenated byte stream, different split points or
        # shapes, must not collide.
        ab, c = (np.frombuffer(b"ab", dtype=np.uint8),
                 np.frombuffer(b"c", dtype=np.uint8))
        a, bc = (np.frombuffer(b"a", dtype=np.uint8),
                 np.frombuffer(b"bc", dtype=np.uint8))
        assert (ArtifactCache.dataset_digest(ab, c)
                != ArtifactCache.dataset_digest(a, bc))
        flat = np.arange(16, dtype=np.uint8)
        assert (ArtifactCache.dataset_digest(flat)
                != ArtifactCache.dataset_digest(flat.reshape(4, 4)))

    def test_cache_pins_problems_against_id_recycling(self, small_problem):
        # Regression: keying on id(problem) alone would let a freed
        # problem's recycled id serve stale artifacts.  The cache must
        # hold a strong reference to every problem it has seen.
        import gc

        from repro.contest import build_suite, make_problem

        cache = ArtifactCache()
        suite = build_suite()
        seen = []
        for _ in range(4):
            p = make_problem(suite[0], n_train=16, n_valid=16, n_test=16)
            seen.append(id(p))
            marker = object()
            got = cache.get_or_compute(p, "f", (), lambda: marker)
            assert got is marker  # always a miss: p is a new problem
            del p
            gc.collect()
        assert cache.misses == 4 and cache.hits == 0


class TestCrossFlowSharing:
    """Acceptance: the cache deduplicates a shared model family across
    flows.  Teams 1 and 7 run the identical standard-function match
    scan on the identical merged dataset — with a shared cache the
    scan happens once, and both flows still return byte-identical
    Solutions."""

    @pytest.fixture(scope="class")
    def parity_problem(self):
        from repro.contest import build_suite, make_problem

        return make_problem(build_suite()[74], n_train=200, n_valid=200,
                            n_test=200)

    def test_match_family_computed_once_across_flows(self,
                                                     parity_problem):
        cache = ArtifactCache()
        sol01 = get_flow("team01").run(parity_problem, cache=cache)
        sol07 = get_flow("team07").run(parity_problem, cache=cache)
        stats = cache.stats()
        assert stats["function-match"] == {"hits": 1, "misses": 1}
        assert stats["merged-dataset"] == {"hits": 1, "misses": 1}
        # Sharing must not change behaviour.
        cold01 = get_flow("team01").run(parity_problem)
        cold07 = get_flow("team07").run(parity_problem)
        from repro.aig.aiger import dumps_aag

        assert sol01.method == cold01.method
        assert sol07.method == cold07.method
        assert dumps_aag(sol01.aig.extract_cone()) == \
            dumps_aag(cold01.aig.extract_cone())
        assert dumps_aag(sol07.aig.extract_cone()) == \
            dumps_aag(cold07.aig.extract_cone())

    def test_portfolio_members_share_the_cache(self, parity_problem):
        cache = ArtifactCache()
        solution = get_flow("portfolio").run(
            parity_problem, flows=["team01", "team07"], cache=cache
        )
        assert solution.method.startswith("portfolio:")
        assert cache.stats()["function-match"]["hits"] >= 1

    def test_team05_grid_dedups_identical_trees(self, small_problem):
        """Within-flow dedup: identical (data, depth) grid cells train
        one tree (at full effort the 80%-proportion cells repeat per
        sweep seed; at small effort the family is at least present)."""
        result = get_flow("team05").run_detailed(small_problem)
        stats = result.cache_stats
        assert "decision-tree" in stats
        assert stats["decision-tree"]["misses"] >= 1


class TestFlowResult:
    def test_detailed_matches_run(self, small_problem):
        flow = get_flow("team10")
        detailed = flow.run_detailed(small_problem)
        plain = flow.run(small_problem)
        assert detailed.solution.method == plain.method
        assert detailed.flow == "team10"
        assert detailed.effort == "small"
        assert not detailed.short_circuited
        [record] = detailed.candidates
        assert record.name == "dt8"
        assert record.stage == "dt8"
        assert record.num_ands == detailed.solution.aig.count_used_ands()
        assert "leaves" in record.provenance

    def test_candidate_table_covers_all_stages(self):
        from repro.contest import build_suite, make_problem

        # A random control cone: no standard-function match, so the
        # espresso + beam + forests stages all emit into the funnel.
        problem = make_problem(build_suite()[50], n_train=150,
                               n_valid=150, n_test=150)
        result = get_flow("team01").run_detailed(problem)
        assert not result.short_circuited
        stages = {c.stage for c in result.candidates}
        assert {"espresso", "lutnet-beam", "forests"} <= stages

    def test_short_circuit_flagged(self):
        from repro.contest import build_suite, make_problem

        parity = make_problem(build_suite()[74], n_train=200,
                              n_valid=200, n_test=200)
        result = get_flow("team07").run_detailed(parity)
        assert result.short_circuited
        assert result.solution.method == "team07:match"


class TestFlowObject:
    def test_flow_is_callable_with_contract(self, small_problem):
        flow = get_flow("team10")
        assert flow(small_problem).method == flow.run(small_problem).method

    def test_params_for_returns_copy(self):
        flow = get_flow("team01")
        params = flow.params_for("small")
        params["forest_sizes"] = ()
        assert flow.params_for("small")["forest_sizes"] != ()

    def test_params_for_unknown_effort(self):
        with pytest.raises(KeyError, match="no effort"):
            get_flow("team01").params_for("huge")

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Flow("x", team="t", efforts={"small": {}}, stages=())

    def test_duplicate_stage_names_rejected(self):
        stage = Stage("s", lambda ctx: None)
        with pytest.raises(ValueError, match="duplicate stage"):
            Flow("x", team="t", efforts={"small": {}},
                 stages=(stage, Stage("s", lambda ctx: None)))

    def test_finalize_spec_callable_optimize(self, rng):
        from repro.aig.aig import AIG

        spec = FinalizeSpec(optimize=lambda aig: False)
        aig = AIG(2)
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1)))
        out = spec.apply(aig, rng)
        assert out.truth_tables() == aig.truth_tables()

    def test_custom_flow_end_to_end(self, scratch_flow, small_problem):
        """The README registration example, as a test: register, run
        through the registry, run through run_contest."""
        from repro.analysis import run_contest

        solution = resolve_spec("scratch-flow")(small_problem)
        assert isinstance(solution, Solution)
        assert solution.method == "scratch-flow:const0"
        run = run_contest([74], ["scratch-flow"], n_train=32,
                          n_valid=32, n_test=32)
        assert set(run.scores_by_team) == {"scratch-flow"}
