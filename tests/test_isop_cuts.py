"""Tests for ISOP (Minato-Morreale) and cut enumeration."""

import random

import numpy as np
import pytest

from repro.aig.cuts import cut_function, enumerate_cuts, mffc_size
from repro.aig.isop import (
    cofactor0,
    cofactor1,
    cover_table,
    full_mask,
    isop,
    support,
    var_mask,
)
from tests.conftest import random_aig


class TestTruthTableOps:
    def test_var_mask_known(self):
        assert var_mask(2, 0) == 0b1010
        assert var_mask(2, 1) == 0b1100

    def test_cofactors_partition(self):
        rnd = random.Random(0)
        for _ in range(50):
            k = rnd.randint(1, 5)
            f = rnd.getrandbits(1 << k)
            for i in range(k):
                f0 = cofactor0(f, k, i)
                f1 = cofactor1(f, k, i)
                nm = var_mask(k, i)
                recombined = (f0 & ~nm) | (f1 & nm)
                assert recombined & full_mask(k) == f & full_mask(k)

    def test_support(self):
        # f = x0 over 3 vars.
        f = var_mask(3, 0)
        assert support(f, 3) == [0]


class TestIsop:
    def test_exact_functions(self):
        rnd = random.Random(1)
        for _ in range(200):
            k = rnd.randint(1, 5)
            f = rnd.getrandbits(1 << k) & full_mask(k)
            cover, table = isop(f, f, k)
            assert table == f
            assert cover_table(cover, k) == f

    def test_interval_respected(self):
        rnd = random.Random(2)
        for _ in range(200):
            k = rnd.randint(1, 5)
            fm = full_mask(k)
            f = rnd.getrandbits(1 << k) & fm
            dc = rnd.getrandbits(1 << k) & fm
            lower = f & ~dc & fm
            upper = (f | dc) & fm
            cover, table = isop(lower, upper, k)
            assert lower & ~table & fm == 0
            assert table & ~upper & fm == 0
            assert cover_table(cover, k) == table

    def test_irredundant(self):
        rnd = random.Random(3)
        for _ in range(50):
            k = rnd.randint(2, 4)
            f = rnd.getrandbits(1 << k) & full_mask(k)
            cover, table = isop(f, f, k)
            for drop in range(len(cover)):
                reduced = cover[:drop] + cover[drop + 1 :]
                assert cover_table(reduced, k) != table or not cover

    def test_infeasible_interval_raises(self):
        with pytest.raises(ValueError):
            isop(0b11, 0b01, 2)

    def test_constants(self):
        assert isop(0, 0, 3) == ([], 0)
        cover, table = isop(full_mask(3), full_mask(3), 3)
        assert table == full_mask(3)
        assert cover == [()]


class TestCuts:
    def test_trivial_cuts_present(self):
        aig = random_aig(4, 10, seed=5)
        cuts = enumerate_cuts(aig, k=4)
        for var in range(1 + aig.n_inputs, aig.num_vars):
            assert (var,) in cuts[var]

    def test_cut_size_bounded(self):
        aig = random_aig(6, 40, seed=6)
        cuts = enumerate_cuts(aig, k=3)
        for var, cl in cuts.items():
            for cut in cl:
                if cut != (var,):
                    assert len(cut) <= 3

    def test_cut_functions_match_simulation(self):
        from repro.utils.bitops import pack_bits, unpack_bits

        aig = random_aig(5, 25, seed=8)
        grid = np.array(
            [[(m >> i) & 1 for i in range(5)] for m in range(32)],
            dtype=np.uint8,
        )
        values = unpack_bits(aig.simulate_packed_all(pack_bits(grid)), 32)
        cuts = enumerate_cuts(aig, k=4)
        checked = 0
        for var, cl in cuts.items():
            if not aig.is_and_var(var):
                continue
            for cut in cl:
                if cut == (var,):
                    continue
                table = cut_function(aig, var, cut)
                for m in range(32):
                    idx = 0
                    for pos, leaf in enumerate(cut):
                        if values[m, leaf]:
                            idx |= 1 << pos
                    assert (table >> idx) & 1 == values[m, var]
                checked += 1
        assert checked > 0

    def test_cut_function_rejects_non_cut(self):
        aig = random_aig(4, 15, seed=9)
        last = aig.num_vars - 1
        with pytest.raises(ValueError):
            cut_function(aig, last, ())

    def test_mffc_of_chain(self):
        from repro.aig.aig import AIG

        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        x = aig.add_and(a, b)
        y = aig.add_and(x, c)
        aig.set_output(y)
        fanout = aig.fanout_counts()
        assert mffc_size(aig, y >> 1, fanout) == 2

    def test_mffc_iterative_on_deep_chain(self):
        # Satellite regression: the recursive walk blew the Python
        # recursion limit on single-fanout chains of this depth.
        from repro.aig.aig import AIG

        n = 5000
        aig = AIG(n)
        acc = aig.input_lit(0)
        for i in range(1, n):
            acc = aig.add_and(acc, aig.input_lit(i))
        aig.set_output(acc)
        fanout = aig.fanout_counts()
        assert mffc_size(aig, acc >> 1, fanout) == n - 1

    def test_cut_function_iterative_on_deep_cone(self):
        # Satellite regression: a 4-leaf cut of a chain over repeated
        # inputs spans the whole chain; the recursive evaluator
        # crashed, the iterative one must agree with simulation.
        from repro.aig.aig import AIG

        aig = AIG(2)
        x, y = aig.input_lit(0), aig.input_lit(1)
        acc = x
        for i in range(5000):
            acc = aig.add_and(acc, (x, y)[i % 2] ^ ((i // 3) & 1))
        aig.set_output(acc)
        table = cut_function(aig, acc >> 1, (x >> 1, y >> 1))
        assert table == aig.truth_tables()[0]
