"""Edge cases and failure injection across the library."""

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST0, CONST1, lit_not
from repro.aig.aiger import read_aag, read_aiger, write_aag, write_aiger
from repro.aig.approx import approximate_to_size
from repro.aig.build import ripple_adder
from repro.aig.optimize import balance, compress, rewrite
from repro.contest import Solution, evaluate_solution
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.lutnet import LUTNetwork
from repro.twolevel.cube import Cube
from repro.twolevel.espresso import espresso


class TestDegenerateCircuits:
    def test_empty_aig_passes(self):
        aig = AIG(0)
        aig.set_output(CONST1)
        assert aig.simulate(np.zeros((4, 0), dtype=np.uint8))[:, 0].tolist() == [1] * 4

    def test_no_outputs_depth_zero(self):
        aig = AIG(3)
        assert aig.depth() == 0

    def test_optimize_identity_output(self):
        aig = AIG(2)
        aig.set_output(aig.input_lit(1))
        for pass_fn in (balance, rewrite, compress):
            out = pass_fn(aig)
            assert out.truth_tables() == aig.truth_tables()
            assert out.num_ands == 0

    def test_duplicate_outputs(self):
        aig = AIG(2)
        x = aig.add_and(aig.input_lit(0), aig.input_lit(1))
        aig.set_output(x)
        aig.set_output(x)
        aig.set_output(lit_not(x))
        out = compress(aig)
        assert out.truth_tables() == aig.truth_tables()

    def test_approximate_constant_circuit(self):
        aig = AIG(4)
        aig.set_output(CONST0)
        out = approximate_to_size(aig, max_ands=10)
        assert out.num_ands == 0

    def test_adder_zero_width(self):
        aig = AIG(0)
        bits = ripple_adder(aig, [], [])
        assert bits == [CONST0]  # just the carry


class TestDegenerateLearners:
    def test_dt_single_sample(self):
        tree = DecisionTree().fit(
            np.array([[1, 0]], dtype=np.uint8), np.array([1], np.uint8)
        )
        assert tree.predict(np.array([[0, 0]], np.uint8))[0] == 1

    def test_dt_all_identical_features(self):
        X = np.ones((50, 3), dtype=np.uint8)
        y = np.array([0, 1] * 25, dtype=np.uint8)
        tree = DecisionTree().fit(X, y)
        assert tree.num_leaves() == 1  # nothing to split on

    def test_forest_constant_labels(self, rng):
        X = rng.integers(0, 2, size=(60, 4)).astype(np.uint8)
        y = np.ones(60, dtype=np.uint8)
        forest = RandomForest(n_trees=3, rng=rng).fit(X, y)
        assert forest.predict(X).tolist() == [1] * 60

    def test_lutnet_single_input(self, rng):
        X = rng.integers(0, 2, size=(100, 1)).astype(np.uint8)
        net = LUTNetwork(n_layers=1, luts_per_layer=2, lut_size=2,
                         rng=rng).fit(X, X[:, 0])
        assert (net.predict(X) == X[:, 0]).mean() == 1.0

    def test_dataset_empty_rows(self):
        data = Dataset(np.zeros((0, 5), np.uint8), np.zeros(0, np.uint8))
        assert data.onset_fraction() == 0.0


class TestEvaluationGuards:
    def test_illegal_solution_flagged(self, small_problem):
        aig = AIG(small_problem.n_inputs)
        acc = CONST1
        # Burn nodes well past the cap with a long useless chain.
        x = aig.add_and(aig.input_lit(0), aig.input_lit(1))
        for _ in range(30):
            x = aig.add_and(x, aig.input_lit(0) ^ 1)
            x = aig.add_or(x, aig.input_lit(1))
        aig.set_output(x)
        del acc
        score = evaluate_solution(
            small_problem, Solution(aig=aig, method="bloat"),
            max_nodes=3,
        )
        assert not score.legal

    def test_multi_output_solutions_rejected(self, small_problem):
        aig = AIG(small_problem.n_inputs)
        aig.set_output(CONST0)
        aig.set_output(CONST1)
        with pytest.raises(ValueError):
            evaluate_solution(small_problem,
                              Solution(aig=aig, method="x"))


class TestFormatRobustness:
    def test_aiger_single_node_delta_encoding(self, tmp_path):
        # Deltas of exactly 0 between rhs literals stress the varint.
        aig = AIG(1)
        x = aig.input_lit(0)
        aig.set_output(aig.add_and(x, lit_not(x) ^ 1))  # folded: x
        path = tmp_path / "one.aig"
        write_aiger(aig, path)
        assert read_aiger(path).truth_tables() == aig.truth_tables()

    def test_aiger_large_graph(self, tmp_path):
        aig = AIG(8)
        lits = aig.input_lits()
        for bit in ripple_adder(aig, lits[:4], lits[4:]):
            aig.set_output(bit)
        a = tmp_path / "big.aag"
        b = tmp_path / "big.aig"
        write_aag(aig, a)
        write_aiger(aig, b)
        assert read_aag(a).truth_tables() == read_aiger(b).truth_tables()

    def test_espresso_matrix_inputs(self, rng):
        X = rng.integers(0, 2, size=(80, 10)).astype(np.uint8)
        y = (X[:, 0] & X[:, 4]).astype(np.uint8)
        cover = espresso(X[y == 1], X[y == 0], 10)
        assert np.array_equal(cover.evaluate(X), y)

    def test_cube_full_space(self):
        cube = Cube.full()
        assert cube.num_literals() == 0
        assert cube.contains_minterm(12345)
        assert cube.to_string(4) == "----"
