"""MLPs (with pruning / sine / log-interaction) and LUT networks."""

import numpy as np
import pytest

from repro.ml.lutnet import LUTNetwork
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLP, LogInteractionNet


def _simple(rng, n=1200, d=8):
    X = rng.integers(0, 2, size=(n, d)).astype(np.uint8)
    y = ((X[:, 0] & X[:, 1]) | X[:, 3]).astype(np.uint8)
    return X, y


class TestMLP:
    def test_learns_simple_function(self, rng):
        X, y = _simple(rng)
        mlp = MLP(hidden_sizes=(16,), rng=rng).fit(
            X.astype(float), y, epochs=40
        )
        assert accuracy(y, mlp.predict(X.astype(float))) > 0.95

    def test_sine_activation_learns_parity(self, rng):
        X = rng.integers(0, 2, size=(3000, 6)).astype(np.uint8)
        y = (X.sum(axis=1) % 2).astype(np.uint8)
        sine = MLP(hidden_sizes=(24,), activation="sine",
                   rng=np.random.default_rng(0))
        sine.fit(X[:2500].astype(float), y[:2500], epochs=60)
        acc = accuracy(y[2500:], sine.predict(X[2500:].astype(float)))
        assert acc > 0.8

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            MLP(activation="swish")

    def test_pruning_respects_fanin_and_keeps_accuracy(self, rng):
        X, y = _simple(rng)
        mlp = MLP(hidden_sizes=(16, 8), rng=rng).fit(
            X.astype(float), y, epochs=25
        )
        mlp.prune_to_fanin(4, X.astype(float), y, rounds=2,
                           retrain_epochs=8)
        assert mlp.max_fanin() <= 4
        assert accuracy(y, mlp.predict(X.astype(float))) > 0.9

    def test_prune_requires_fit(self):
        with pytest.raises(RuntimeError):
            MLP().prune_to_fanin(4, np.zeros((1, 2)), np.zeros(1))

    def test_feature_importance_finds_relevant(self, rng):
        X, y = _simple(rng)
        mlp = MLP(hidden_sizes=(32,), rng=rng).fit(
            X.astype(float), y, epochs=25
        )
        ranked = np.argsort(-mlp.feature_importance())
        assert {0, 1, 3} & set(ranked[:4].tolist())

    def test_neuron_fanins_reflect_mask(self, rng):
        X, y = _simple(rng)
        mlp = MLP(hidden_sizes=(8,), rng=rng).fit(
            X.astype(float), y, epochs=5
        )
        mlp.layers[0].mask[:, 0] = 0
        mlp.layers[0].mask[2, 0] = 1
        assert mlp.neuron_fanins(0)[0].tolist() == [2]


class TestLogInteractionNet:
    def test_learns_conjunction(self, rng):
        X, y = _simple(rng)
        model = LogInteractionNet(n_cross=32, hidden_sizes=(32,),
                                  rng=np.random.default_rng(1))
        model.fit(X, y, epochs=50)
        assert accuracy(y, model.predict(X)) > 0.9


class TestLUTNetwork:
    def test_memorizes_training_data(self, rng):
        X, y = _simple(rng, n=600)
        net = LUTNetwork(n_layers=2, luts_per_layer=32, lut_size=4,
                         rng=rng).fit(X, y)
        assert accuracy(y, net.predict(X)) > 0.9

    def test_generalizes_some(self, rng):
        X, y = _simple(rng, n=2000)
        net = LUTNetwork(n_layers=3, luts_per_layer=64, lut_size=4,
                         rng=rng).fit(X[:1500], y[:1500])
        assert accuracy(y[1500:], net.predict(X[1500:])) > 0.75

    def test_unique_scheme_uses_all_outputs(self, rng):
        net = LUTNetwork(n_layers=1, luts_per_layer=16, lut_size=4,
                         scheme="unique", rng=rng)
        X = rng.integers(0, 2, size=(200, 8)).astype(np.uint8)
        y = X[:, 0]
        net.fit(X, y)
        # 16 LUTs x 4 wires = 64 wires over 8 inputs: every input must
        # appear exactly 8 times under the unique scheme.
        counts = np.bincount(net.connections[0].ravel(), minlength=8)
        assert counts.tolist() == [8] * 8

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError):
            LUTNetwork(scheme="sorted")

    def test_num_luts(self, rng):
        net = LUTNetwork(n_layers=2, luts_per_layer=10, lut_size=2,
                         rng=rng)
        X = rng.integers(0, 2, size=(100, 5)).astype(np.uint8)
        net.fit(X, X[:, 0])
        assert net.num_luts() == 21  # 2 layers of 10 + output LUT

    def test_forward_deterministic(self, rng):
        X, y = _simple(rng, n=300)
        net = LUTNetwork(rng=np.random.default_rng(5)).fit(X, y)
        a = net.predict(X)
        b = net.predict(X)
        assert np.array_equal(a, b)
