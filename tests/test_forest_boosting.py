"""Random forests and gradient boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy


def _problem(rng, n=1500, d=12):
    X = rng.integers(0, 2, size=(n, d)).astype(np.uint8)
    y = ((X[:, 0] & X[:, 1]) | (X[:, 4] & X[:, 7])).astype(np.uint8)
    return X[:1000], y[:1000], X[1000:], y[1000:]


class TestForest:
    def test_learns_and_generalizes(self, rng):
        X, y, Xt, yt = _problem(rng)
        forest = RandomForest(
            n_trees=9, max_depth=8, feature_fraction=0.8, rng=rng
        ).fit(X, y)
        assert accuracy(yt, forest.predict(Xt)) > 0.95

    def test_even_tree_count_rejected(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=4)

    def test_votes_shape(self, rng):
        X, y, Xt, _ = _problem(rng)
        forest = RandomForest(n_trees=5, rng=rng).fit(X, y)
        votes = forest.votes(Xt)
        assert votes.shape == (Xt.shape[0], 5)
        # Majority of votes equals predict.
        maj = (votes.sum(axis=1) * 2 > 5).astype(np.uint8)
        assert np.array_equal(maj, forest.predict(Xt))

    def test_feature_subsets_recorded(self, rng):
        X, y, _, _ = _problem(rng)
        forest = RandomForest(
            n_trees=3, feature_fraction=0.5, rng=rng
        ).fit(X, y)
        for cols in forest.feature_subsets:
            assert len(cols) == 6
            assert np.all(np.diff(cols) > 0)

    def test_deterministic_with_seed(self, rng):
        X, y, Xt, _ = _problem(rng)
        f1 = RandomForest(n_trees=5, rng=np.random.default_rng(3)).fit(X, y)
        f2 = RandomForest(n_trees=5, rng=np.random.default_rng(3)).fit(X, y)
        assert np.array_equal(f1.predict(Xt), f2.predict(Xt))


class TestBoosting:
    def test_learns_and_generalizes(self, rng):
        X, y, Xt, yt = _problem(rng)
        model = GradientBoostedTrees(n_estimators=40, max_depth=3).fit(X, y)
        assert accuracy(yt, model.predict(Xt)) > 0.95

    def test_margin_monotone_in_rounds(self, rng):
        """More boosting rounds should not hurt training accuracy."""
        X, y, _, _ = _problem(rng)
        few = GradientBoostedTrees(n_estimators=3, max_depth=2).fit(X, y)
        many = GradientBoostedTrees(n_estimators=50, max_depth=2).fit(X, y)
        assert accuracy(y, many.predict(X)) >= accuracy(y, few.predict(X))

    def test_quantized_vote_close_to_exact(self, rng):
        X, y, Xt, yt = _problem(rng)
        model = GradientBoostedTrees(n_estimators=31, max_depth=3).fit(X, y)
        exact = accuracy(yt, model.predict(Xt))
        quant = accuracy(yt, model.predict_quantized(Xt))
        assert quant > exact - 0.1

    def test_leaf_bits_shape(self, rng):
        X, y, Xt, _ = _problem(rng)
        model = GradientBoostedTrees(n_estimators=10, max_depth=2).fit(X, y)
        bits = model.leaf_bits(Xt)
        assert bits.shape[0] == Xt.shape[0]
        assert bits.shape[1] == len(model.trees)
        assert set(np.unique(bits)) <= {0, 1}

    def test_learns_xor_unlike_single_shallow_tree(self, rng):
        X = rng.integers(0, 2, size=(2000, 6)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 1]).astype(np.uint8)
        model = GradientBoostedTrees(n_estimators=40, max_depth=3).fit(
            X[:1500], y[:1500]
        )
        assert accuracy(y[1500:], model.predict(X[1500:])) > 0.95

    def test_regularization_shrinks_trees(self, rng):
        X, y, _, _ = _problem(rng)
        loose = GradientBoostedTrees(
            n_estimators=5, max_depth=6, gamma=0.0
        ).fit(X, y)
        tight = GradientBoostedTrees(
            n_estimators=5, max_depth=6, gamma=5.0
        ).fit(X, y)
        loose_nodes = sum(len(t.nodes) for t in loose.trees)
        tight_nodes = sum(len(t.nodes) for t in tight.trees)
        assert tight_nodes <= loose_nodes
