"""CLI coverage: list / run / contest / report plus validation errors."""

import pytest

from repro.cli import main


def _run(argv):
    main(argv)


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        _run(["list"])
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) == 100
        assert lines[0].startswith("ex00")
        assert "comparator" in out


class TestRun:
    def test_run_single_flow(self, capsys, tmp_path):
        out_path = tmp_path / "sol.aag"
        _run(["run", "--benchmark", "74", "--flow", "team10",
              "--samples", "32", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "benchmark: ex74" in out
        assert "test acc:" in out
        assert out_path.exists()
        assert out_path.read_text().startswith("aag ")

    def test_bad_benchmark_index(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "200", "--flow", "team10"])
        assert exc.value.code == 2
        assert "out of range" in capsys.readouterr().err

    def test_negative_benchmark_index(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "-1", "--flow", "team10"])
        assert exc.value.code == 2

    def test_unknown_flow(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "0", "--flow", "team99"])
        assert exc.value.code == 2
        assert "unknown flow" in capsys.readouterr().err

    def test_run_with_effort_spec_string(self, capsys):
        _run(["run", "--benchmark", "74", "--flow", "team10:effort=full",
              "--samples", "32"])
        out = capsys.readouterr().out
        assert "benchmark: ex74" in out
        assert "method:    team10:" in out

    def test_run_portfolio_with_member_subset(self, capsys):
        _run(["run", "--benchmark", "74",
              "--flow", "portfolio:flows=team07+team10",
              "--samples", "32"])
        out = capsys.readouterr().out
        assert "method:    portfolio:" in out

    def test_bad_spec_override(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "0", "--flow",
                  "team10:bogus=1"])
        assert exc.value.code == 2
        assert "override" in capsys.readouterr().err


class TestFlowsSubcommand:
    def test_lists_registry_with_metadata(self, capsys):
        _run(["flows"])
        out = capsys.readouterr().out
        assert "team01" in out and "portfolio" in out
        assert "stages:" in out
        assert "techniques:" in out
        assert "efforts: full, small" in out

    def test_check_resolves_spec(self, capsys):
        _run(["flows", "--check", "team01:effort=full"])
        out = capsys.readouterr().out
        assert "team01" in out and "full" in out

    def test_check_rejects_bad_effort(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["flows", "--check", "team01:effort=huge"])
        assert exc.value.code == 2
        assert "no effort" in capsys.readouterr().err


class TestContestAndReport:
    def test_contest_writes_store_and_report_reads_it(self, capsys,
                                                      tmp_path):
        out_dir = tmp_path / "run"
        _run(["contest", "--benchmarks", "74", "--flows", "team10",
              "--samples", "32", "--out-dir", str(out_dir)])
        contest_out = capsys.readouterr().out
        assert "test acc" in contest_out
        assert (out_dir / "records.jsonl").exists()
        assert (out_dir / "manifest.json").exists()

        _run(["report", "--out-dir", str(out_dir)])
        report_out = capsys.readouterr().out
        assert "1 teams, 1 stored scores" in report_out
        assert "team10" in report_out
        assert "top1pct" in report_out
        # The report's Table III row matches the contest's.
        contest_row = [ln for ln in contest_out.splitlines()
                       if ln.strip().startswith("team10")][-1]
        assert contest_row in report_out

    def test_contest_resume_reports_skip(self, capsys, tmp_path):
        out_dir = tmp_path / "run"
        argv = ["contest", "--benchmarks", "74", "--flows", "team10",
                "--samples", "32", "--out-dir", str(out_dir)]
        _run(argv)
        capsys.readouterr()
        _run(argv)
        assert "resume: 1 of 1" in capsys.readouterr().out

    def test_contest_parallel_jobs(self, capsys, tmp_path):
        _run(["contest", "--benchmarks", "74", "--flows", "team10",
              "--samples", "32", "--jobs", "2",
              "--out-dir", str(tmp_path / "r")])
        assert "team10" in capsys.readouterr().out

    def test_contest_bad_benchmark(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "0", "101",
                  "--flows", "team10"])
        assert exc.value.code == 2
        assert "out of range" in capsys.readouterr().err

    def test_contest_unknown_flow(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "0", "--flows", "teamXX"])
        assert exc.value.code == 2

    def test_contest_accepts_portfolio_flow(self, capsys):
        _run(["contest", "--benchmarks", "74", "--flows",
              "portfolio:flows=team07+team10", "--samples", "32"])
        out = capsys.readouterr().out
        assert "portfolio" in out

    def test_report_missing_directory(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            _run(["report", "--out-dir", str(tmp_path / "nope")])
        assert exc.value.code == 2
        assert "no records" in capsys.readouterr().err

    def test_missing_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run([])
        assert exc.value.code == 2
