"""CLI coverage: list / run / contest / report plus validation errors."""

import pytest

from repro.cli import main


def _run(argv):
    main(argv)


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        _run(["list"])
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) == 100
        assert lines[0].startswith("ex00")
        assert "comparator" in out

    def test_list_with_glob_pattern(self, capsys):
        _run(["list", "adder*"])
        lines = [ln for ln in capsys.readouterr().out.splitlines()
                 if ln.strip()]
        assert len(lines) == 10
        assert all("adder" in ln for ln in lines)

    def test_list_family_spec_string(self, capsys):
        _run(["list", "adder:width=48"])
        out = capsys.readouterr().out
        assert "adder:bit=48,width=48" in out
        assert "96 inputs" in out

    def test_list_families(self, capsys):
        _run(["list", "--families"])
        out = capsys.readouterr().out
        assert "adder" in out and "perturbed" in out
        assert "width=<required>" in out

    def test_list_near_match_suggestion(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["list", "ex9a"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "ex9" in err


class TestRun:
    def test_run_single_flow(self, capsys, tmp_path):
        out_path = tmp_path / "sol.aag"
        _run(["run", "--benchmark", "74", "--flow", "team10",
              "--samples", "32", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "benchmark: ex74" in out
        assert "test acc:" in out
        assert out_path.exists()
        assert out_path.read_text().startswith("aag ")

    def test_bad_benchmark_index(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "200", "--flow", "team10"])
        assert exc.value.code == 2
        assert "out of range" in capsys.readouterr().err

    def test_negative_benchmark_index(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "-1", "--flow", "team10"])
        assert exc.value.code == 2

    def test_unknown_flow(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "0", "--flow", "team99"])
        assert exc.value.code == 2
        assert "unknown flow" in capsys.readouterr().err

    def test_run_with_effort_spec_string(self, capsys):
        _run(["run", "--benchmark", "74", "--flow", "team10:effort=full",
              "--samples", "32"])
        out = capsys.readouterr().out
        assert "benchmark: ex74" in out
        assert "method:    team10:" in out

    def test_run_portfolio_with_member_subset(self, capsys):
        _run(["run", "--benchmark", "74",
              "--flow", "portfolio:flows=team07+team10",
              "--samples", "32"])
        out = capsys.readouterr().out
        assert "method:    portfolio:" in out

    def test_bad_spec_override(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "0", "--flow",
                  "team10:bogus=1"])
        assert exc.value.code == 2
        assert "override" in capsys.readouterr().err


class TestFlowsSubcommand:
    def test_lists_registry_with_metadata(self, capsys):
        _run(["flows"])
        out = capsys.readouterr().out
        assert "team01" in out and "portfolio" in out
        assert "stages:" in out
        assert "techniques:" in out
        assert "efforts: full, small" in out

    def test_check_resolves_spec(self, capsys):
        _run(["flows", "--check", "team01:effort=full"])
        out = capsys.readouterr().out
        assert "team01" in out and "full" in out

    def test_check_rejects_bad_effort(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["flows", "--check", "team01:effort=huge"])
        assert exc.value.code == 2
        assert "no effort" in capsys.readouterr().err


class TestContestAndReport:
    def test_contest_writes_store_and_report_reads_it(self, capsys,
                                                      tmp_path):
        out_dir = tmp_path / "run"
        _run(["contest", "--benchmarks", "74", "--flows", "team10",
              "--samples", "32", "--out-dir", str(out_dir)])
        contest_out = capsys.readouterr().out
        assert "test acc" in contest_out
        assert (out_dir / "records.jsonl").exists()
        assert (out_dir / "manifest.json").exists()

        _run(["report", "--out-dir", str(out_dir)])
        report_out = capsys.readouterr().out
        assert "1 teams, 1 stored scores" in report_out
        assert "team10" in report_out
        assert "top1pct" in report_out
        # The report's Table III row matches the contest's.
        contest_row = [ln for ln in contest_out.splitlines()
                       if ln.strip().startswith("team10")][-1]
        assert contest_row in report_out

    def test_contest_resume_reports_skip(self, capsys, tmp_path):
        out_dir = tmp_path / "run"
        argv = ["contest", "--benchmarks", "74", "--flows", "team10",
                "--samples", "32", "--out-dir", str(out_dir)]
        _run(argv)
        capsys.readouterr()
        _run(argv)
        assert "resume: 1 of 1" in capsys.readouterr().out

    def test_contest_parallel_jobs(self, capsys, tmp_path):
        _run(["contest", "--benchmarks", "74", "--flows", "team10",
              "--samples", "32", "--jobs", "2",
              "--out-dir", str(tmp_path / "r")])
        assert "team10" in capsys.readouterr().out

    def test_contest_bad_benchmark(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "0", "101",
                  "--flows", "team10"])
        assert exc.value.code == 2
        assert "out of range" in capsys.readouterr().err

    def test_contest_unknown_flow(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "0", "--flows", "teamXX"])
        assert exc.value.code == 2

    def test_contest_accepts_portfolio_flow(self, capsys):
        _run(["contest", "--benchmarks", "74", "--flows",
              "portfolio:flows=team07+team10", "--samples", "32"])
        out = capsys.readouterr().out
        assert "portfolio" in out

    def test_report_missing_directory(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            _run(["report", "--out-dir", str(tmp_path / "nope")])
        assert exc.value.code == 2
        assert "no records" in capsys.readouterr().err

    def test_contest_glob_and_spec_string_benchmarks(self, capsys,
                                                     tmp_path):
        _run(["contest", "--benchmarks", "ex74", "parity:inputs=10",
              "--flows", "team10", "--samples", "32",
              "--out-dir", str(tmp_path / "r")])
        out = capsys.readouterr().out
        assert "ex74" in out and "parity:inputs=10" in out
        _run(["report", "--out-dir", str(tmp_path / "r")])
        assert "2 stored scores" in capsys.readouterr().out

    def test_contest_benchmark_near_match_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "ex7a", "--flows", "team10"])
        assert exc.value.code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_contest_empty_selection_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "zz*", "--flows", "team10"])
        assert exc.value.code == 2
        assert "zz*" in capsys.readouterr().err
        # An empty manifest file selects nothing and is also an error.
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing here\n")
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", f"@{empty}",
                  "--flows", "team10"])
        assert exc.value.code == 2
        assert "matched nothing" in capsys.readouterr().err

    def test_contest_bad_shard_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["contest", "--benchmarks", "74", "--flows", "team10",
                  "--shard", "4/4"])
        assert exc.value.code == 2
        assert "invalid shard" in capsys.readouterr().err


class TestShardAndMerge:
    def test_sharded_contest_merges_to_unsharded_bytes(self, capsys,
                                                       tmp_path):
        base = ["contest", "--benchmarks", "74", "adder:width=4",
                "--flows", "team10", "team02", "--samples", "32"]
        _run(base + ["--out-dir", str(tmp_path / "all")])
        shard_dirs = []
        for k in range(2):
            d = tmp_path / f"shard{k}"
            _run(base + ["--shard", f"{k}/2", "--out-dir", str(d)])
            shard_dirs.append(str(d))
        capsys.readouterr()
        _run(["merge", "--from", *shard_dirs,
              "--out-dir", str(tmp_path / "merged")])
        out = capsys.readouterr().out
        assert "merged 2 run directories" in out and "4 records" in out
        all_lines = sorted(
            (tmp_path / "all" / "records.jsonl").read_text().splitlines())
        merged_lines = sorted(
            (tmp_path / "merged" / "records.jsonl").read_text()
            .splitlines())
        assert merged_lines == all_lines

        # Multi-directory report merges in memory, same table.
        _run(["report", "--out-dir", *shard_dirs])
        sharded_report = capsys.readouterr().out
        _run(["report", "--out-dir", str(tmp_path / "all")])
        full_report = capsys.readouterr().out
        assert "merged from 2 run directories" in sharded_report
        assert "4 stored scores" in sharded_report
        tail = full_report[full_report.index("team"):]
        assert tail in sharded_report

    def test_merge_missing_source_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            _run(["merge", "--from", str(tmp_path / "nope"),
                  "--out-dir", str(tmp_path / "out")])
        assert exc.value.code == 2
        assert "no records" in capsys.readouterr().err


class TestRunSpecString:
    def test_run_generated_benchmark(self, capsys):
        _run(["run", "--benchmark", "parity:inputs=10",
              "--flow", "team10", "--samples", "32"])
        out = capsys.readouterr().out
        assert "benchmark: parity:inputs=10" in out
        assert "test acc:" in out

    def test_run_rejects_multi_match_selector(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run(["run", "--benchmark", "adder*", "--flow", "team10"])
        assert exc.value.code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_missing_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _run([])
        assert exc.value.code == 2
