"""Fixture: REP401 — mutable default argument."""


def collect(item, acc=[]):
    acc.append(item)
    return acc
