"""Fixture: REP202 — set iterated in an order-sensitive position."""


def labels():
    return [str(item) for item in {"b", "a", "c"}]
