"""Fixture: REP302 — ambient environment read inside a worker."""

import os


def run_worker(spec):
    return os.environ.get("REPRO_HOME")
