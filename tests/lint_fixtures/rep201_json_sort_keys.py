"""Fixture: REP201 — json.dumps without sort_keys=True."""

import json


def dump(payload):
    return json.dumps(payload)
