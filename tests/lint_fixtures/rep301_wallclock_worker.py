"""Fixture: REP301 — wall-clock read inside a worker function."""

import time


def _worker_step(spec):
    return time.time()
