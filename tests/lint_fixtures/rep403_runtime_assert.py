"""Fixture: REP403 — assert used for runtime validation."""


def checked_add(a, b):
    assert a >= 0, "a must be non-negative"
    return a + b
