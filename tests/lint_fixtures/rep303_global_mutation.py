"""Fixture: REP303 — module global mutated inside a worker."""

_CACHE = {}


def _worker_fill(key, value):
    _CACHE[key] = value
