from collections import OrderedDict


def role() -> OrderedDict:
    return OrderedDict(undocumented=True)
