"""Fixture: canonical patterns every rule accepts."""

import json

import numpy as np


def dump(payload):
    return json.dumps(payload, sort_keys=True)


def make_rng(seed):
    return np.random.default_rng(seed)


def labels(items):
    return [str(item) for item in sorted(set(items))]
