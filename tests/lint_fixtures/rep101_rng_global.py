"""Fixture: REP101 — call into module-level RNG state."""

import random


def shuffle_rows(rows):
    random.shuffle(rows)
    return rows
