"""Fixture: REP102 — RNG constructed without a seed."""

import numpy as np


def make_rng():
    return np.random.default_rng()
