"""Fixture: a REP201 violation silenced by an inline suppression."""

import json


def dump(payload):
    return json.dumps(payload)  # repro-lint: ignore[REP201]
