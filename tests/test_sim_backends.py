"""Cross-backend differential tests and backend-selection semantics.

Every executor backend must produce *byte-identical* packed words for
the same program and inputs — the differential tests drive random
AIGs (hypothesis) and adversarial chain shapes through every available
backend and compare against the numpy reference with ``tobytes()``
equality.  Selection tests pin the documented precedence (call arg >
``set_backend`` > ``REPRO_SIM_BACKEND`` > default) and the
silent-fallback contract for the optional numba backend.
"""

import dataclasses
import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG, CONST0, CONST1
from repro.sim import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailable,
    CompiledAIG,
    SimProgram,
    available_backends,
    backend as backend_mod,
    backend_names,
    compile_aig,
    get_backend,
    resolve_backend,
    set_backend,
    simulate_circuits,
    simulate_datasets,
    simulate_rows_grouped,
)
from repro.sim.batch import output_predictions
from repro.sim.program import _levelize

BACKENDS = available_backends()


def build_random_aig(n_inputs, n_nodes, seed, n_outputs=3):
    rnd = random.Random(seed)
    aig = AIG(n_inputs)
    pool = list(aig.input_lits()) + [CONST0, CONST1]
    for _ in range(n_nodes):
        a = rnd.choice(pool) ^ rnd.randint(0, 1)
        b = rnd.choice(pool) ^ rnd.randint(0, 1)
        pool.append(aig.add_and(a, b))
    for _ in range(n_outputs):
        aig.set_output(rnd.choice(pool) ^ rnd.randint(0, 1))
    return aig


def build_chain_aig(n_nodes):
    """A pure AND chain: depth == n_nodes, one node per level — the
    adversarial shape for the Jacobi levelizer."""
    aig = AIG(2)
    lit = aig.input_lit(0)
    for i in range(n_nodes):
        lit = aig.add_and(lit, aig.input_lit(1) ^ (i & 1))
    aig.set_output(lit)
    return aig


def random_packed(n_inputs, n_words, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 2**63, size=(n_inputs, n_words), dtype=np.int64
    ).astype(np.uint64)


def _levelize_stats(aig):
    f0 = np.asarray(aig._fanin0, dtype=np.int64)
    f1 = np.asarray(aig._fanin1, dtype=np.int64)
    stats = {}
    lv = _levelize(aig.n_inputs, f0 >> 1, f1 >> 1, _stats=stats)
    return lv, stats


class TestDifferential:
    """All backends produce byte-identical packed words."""

    @settings(max_examples=30, deadline=None)
    @given(
        n_inputs=st.integers(min_value=1, max_value=12),
        n_nodes=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=10**6),
        n_words=st.integers(min_value=1, max_value=5),
    )
    def test_run_packed_all_byte_identical(
        self, n_inputs, n_nodes, seed, n_words
    ):
        aig = build_random_aig(n_inputs, n_nodes, seed)
        program = SimProgram(aig)
        packed = random_packed(n_inputs, n_words, seed)
        ref = CompiledAIG(program, backend="numpy").run_packed_all(packed)
        for name in BACKENDS:
            compiled = CompiledAIG(program, backend=name)
            out = compiled.run_packed_all(packed)
            assert out.tobytes() == ref.tobytes(), name
            out2 = compiled.run_packed(packed)
            ref2 = CompiledAIG(program, backend="numpy").run_packed(packed)
            assert out2.tobytes() == ref2.tobytes(), name

    @pytest.mark.parametrize("n_nodes", [5000])
    def test_chain_shape_byte_identical(self, n_nodes):
        aig = build_chain_aig(n_nodes)
        program = SimProgram(aig)
        assert program.depth == n_nodes
        packed = random_packed(2, 3, seed=n_nodes)
        ref = CompiledAIG(program, backend="numpy").run_packed_all(packed)
        for name in BACKENDS:
            out = CompiledAIG(program, backend=name).run_packed_all(packed)
            assert out.tobytes() == ref.tobytes(), name

    @pytest.mark.parametrize("name", BACKENDS)
    def test_simulate_datasets_matches_numpy(self, name):
        aig = build_random_aig(7, 120, 3)
        rng = np.random.default_rng(3)
        mats = [
            rng.integers(0, 2, size=(n, 7)).astype(np.uint8)
            for n in (1, 63, 64, 65, 200)
        ]
        ref = simulate_datasets(aig, mats, backend="numpy")
        got = simulate_datasets(aig, mats, backend=name)
        for r, g in zip(ref, got, strict=True):
            assert g.tobytes() == r.tobytes()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_simulate_circuits_matches_numpy(self, name):
        rng = np.random.default_rng(5)
        X = rng.integers(0, 2, size=(150, 6)).astype(np.uint8)
        aigs = [
            build_random_aig(6, n, seed=n, n_outputs=1)
            for n in (0, 15, 90)
        ]
        ref = simulate_circuits(aigs, X, backend="numpy")
        got = simulate_circuits(aigs, X, backend=name)
        for r, g in zip(ref, got, strict=True):
            assert g.tobytes() == r.tobytes()
        ref_p = output_predictions(aigs, X, backend="numpy")
        got_p = output_predictions(aigs, X, backend=name)
        for r, g in zip(ref_p, got_p, strict=True):
            assert g.tobytes() == r.tobytes()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_simulate_rows_grouped_matches_numpy(self, name):
        aig = build_random_aig(5, 60, 9, n_outputs=2)
        rng = np.random.default_rng(9)
        blocks = [
            rng.integers(0, 2, size=(n, 5)).astype(np.uint8)
            for n in (1, 30, 64, 100)
        ]
        compiled = compile_aig(aig, backend="numpy")
        ref = simulate_rows_grouped(compiled, blocks)
        got = simulate_rows_grouped(compiled, blocks, backend=name)
        for r, g in zip(ref, got, strict=True):
            assert g.tobytes() == r.tobytes()

    def test_results_are_owned_copies(self):
        # Arena-reusing executors must hand out copies: a result held
        # across a later run (or mutated by the caller) must not alias
        # the internal buffers.
        aig = build_random_aig(6, 80, 13)
        for name in BACKENDS:
            compiled = compile_aig(aig, backend=name)
            packed = random_packed(6, 2, 13)
            first = compiled.run_packed_all(packed)
            snapshot = first.copy()
            second = compiled.run_packed_all(packed)
            first[:] = 0  # caller scribbles on its result
            assert second.tobytes() == snapshot.tobytes(), name
            assert compiled.run_packed_all(packed).tobytes() == \
                snapshot.tobytes(), name

    def test_arena_resizes_across_word_counts(self):
        aig = build_random_aig(8, 100, 21)
        for name in BACKENDS:
            compiled = compile_aig(aig, backend=name)
            for n_words in (3, 1, 5, 3):
                packed = random_packed(8, n_words, n_words)
                ref = CompiledAIG(
                    compiled.program, backend="numpy"
                ).run_packed_all(packed)
                out = compiled.run_packed_all(packed)
                assert out.tobytes() == ref.tobytes(), (name, n_words)


class TestLevelizeCutover:
    def test_depth_65_stays_on_fast_path(self):
        # The old hard cap (min(num_ands + 1, 64) rounds) kicked a
        # depth-65 circuit off the vectorized path one round early;
        # the measured-progress cutover must keep it.
        aig = build_chain_aig(65)
        lv, stats = _levelize_stats(aig)
        assert stats["fallback"] is False
        assert stats["rounds"] == 65
        assert int(lv.max()) == 65

    def test_long_chain_bails_after_two_rounds(self):
        # A chain settles one node per round: the forecast must trip
        # immediately instead of running O(depth) vector rounds.
        aig = build_chain_aig(5000)
        lv, stats = _levelize_stats(aig)
        assert stats["fallback"] is True
        assert stats["rounds"] == 2
        base = 1 + aig.n_inputs
        assert np.array_equal(
            lv[base:], np.arange(1, 5001, dtype=np.int32)
        )

    def test_balanced_circuit_never_trips_cutover(self):
        # Wide levels settle a whole row per round; the forecast stays
        # far below break-even, so the fast path runs to completion.
        aig = build_random_aig(10, 400, 17)
        lv, stats = _levelize_stats(aig)
        assert stats["fallback"] is False
        scalar = [0] * (1 + aig.n_inputs)
        for f0, f1 in zip(aig._fanin0, aig._fanin1, strict=True):
            scalar.append(1 + max(scalar[f0 >> 1], scalar[f1 >> 1]))
        assert lv.tolist() == scalar

    def test_empty_program(self):
        aig = AIG(3)
        lv, stats = _levelize_stats(aig)
        assert stats == {"rounds": 0, "fallback": False}
        assert lv.tolist() == [0, 0, 0, 0]


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _isolated_selection(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_forced", None)
        monkeypatch.delenv(ENV_VAR, raising=False)
        self.monkeypatch = monkeypatch

    def test_default(self):
        assert DEFAULT_BACKEND == "fused"
        assert get_backend() == "fused"
        assert resolve_backend(None) == "fused"

    def test_env_var_beats_default(self):
        self.monkeypatch.setenv(ENV_VAR, "numpy")
        assert get_backend() == "numpy"

    def test_set_backend_beats_env_var(self):
        self.monkeypatch.setenv(ENV_VAR, "numpy")
        set_backend("fused")
        assert get_backend() == "fused"
        set_backend(None)  # clearing re-exposes the env var
        assert get_backend() == "numpy"

    def test_call_arg_beats_everything(self):
        self.monkeypatch.setenv(ENV_VAR, "fused")
        set_backend("fused")
        assert resolve_backend("numpy") == "numpy"

    def test_names_are_normalized(self):
        assert resolve_backend("  NumPy ") == "numpy"

    def test_unknown_name_raises_everywhere(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("bogus")
        with pytest.raises(ValueError, match="unknown simulation backend"):
            set_backend("bogus")
        aig = build_random_aig(3, 5, 0)
        with pytest.raises(ValueError, match="unknown simulation backend"):
            aig.compiled("bogus")

    def test_registry_listing(self):
        assert backend_names() == ("numpy", "fused", "numba")
        avail = available_backends()
        assert "numpy" in avail and "fused" in avail
        assert set(avail) <= set(backend_names())

    def _disable(self, name):
        spec = backend_mod._REGISTRY[name]
        self.monkeypatch.setitem(
            backend_mod._REGISTRY, name,
            dataclasses.replace(spec, is_available=lambda: False),
        )

    def test_unavailable_numba_falls_back_silently(self):
        self._disable("numba")
        assert resolve_backend("numba") == "fused"
        self.monkeypatch.setenv(ENV_VAR, "numba")
        assert get_backend() == "fused"
        # and the compiled engine records the *effective* backend
        aig = build_random_aig(3, 8, 1)
        assert aig.compiled("numba").backend == "fused"

    def test_unavailable_without_fallback_raises(self):
        spec = backend_mod._REGISTRY["numpy"]
        self.monkeypatch.setitem(
            backend_mod._REGISTRY, "numpy",
            dataclasses.replace(spec, is_available=lambda: False),
        )
        with pytest.raises(BackendUnavailable):
            resolve_backend("numpy")

    def test_env_var_reaches_compiled_circuits(self):
        self.monkeypatch.setenv(ENV_VAR, "numpy")
        aig = build_random_aig(4, 10, 2)
        assert aig.compiled().backend == "numpy"


class TestEngineBackendPlumbing:
    def test_with_backend_shares_program(self):
        aig = build_random_aig(5, 40, 4)
        fused = compile_aig(aig, backend="fused")
        assert fused.backend == "fused"
        sibling = fused.with_backend("numpy")
        assert sibling.backend == "numpy"
        assert sibling.program is fused.program
        assert fused.with_backend("fused") is fused

    def test_aig_cache_keyed_by_backend(self):
        aig = build_random_aig(5, 30, 6)
        fused = aig.compiled("fused")
        assert aig.compiled("fused") is fused  # cached
        ref = aig.compiled("numpy")
        assert ref is not fused
        assert ref.program is fused.program  # one program, two engines
        aig.set_output(aig.input_lit(0))  # structural change
        assert aig.compiled("fused") is not fused

    def test_program_pickles(self):
        aig = build_random_aig(6, 70, 8)
        program = SimProgram(aig)
        clone = pickle.loads(pickle.dumps(program))
        packed = random_packed(6, 2, 8)
        ref = CompiledAIG(program, backend="numpy").run_packed_all(packed)
        for name in BACKENDS:
            out = CompiledAIG(clone, backend=name).run_packed_all(packed)
            assert out.tobytes() == ref.tobytes(), name


@pytest.mark.skipif(
    "numba" not in BACKENDS, reason="numba not installed"
)
class TestNumbaBackend:
    def test_numba_is_selected_not_fallen_back(self):
        aig = build_random_aig(4, 20, 12)
        assert aig.compiled("numba").backend == "numba"

    def test_empty_and_constant_programs(self):
        aig = AIG(2)
        aig.set_output(CONST1)
        aig.set_output(aig.input_lit(0) ^ 1)
        X = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        ref = aig.simulate(X, backend="numpy")
        assert np.array_equal(aig.simulate(X, backend="numba"), ref)
