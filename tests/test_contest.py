"""Benchmark suite, problems and scoring."""

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST1
from repro.contest import (
    Solution,
    build_suite,
    default_small_indices,
    evaluate_solution,
    make_problem,
)
from repro.contest.functions import (
    SYMMETRIC_SIGNATURES,
    adder_bit,
    comparator,
    cordic_sign,
    divider_bit,
    multiplier_bit,
    parity,
    sqrt_bit,
    symmetric16,
    t481_like,
)
from repro.contest.imagelike import (
    GROUP_COMPARISONS,
    cifar_like_model,
    group_comparison_sampler,
    mnist_like_model,
)
from repro.contest.randomlogic import random_cone_function


class TestSuiteStructure:
    def test_has_100_benchmarks(self):
        suite = build_suite()
        assert len(suite) == 100
        assert [s.index for s in suite] == list(range(100))

    def test_table1_categories(self):
        suite = build_suite()
        expected = {
            "adder": range(0, 10),
            "divider": range(10, 20),
            "multiplier": range(20, 30),
            "comparator": range(30, 40),
            "sqrt": range(40, 50),
            "picojava-like": range(50, 60),
            "i10-like": range(60, 70),
            "mcnc-like": range(70, 75),
            "symmetric": range(75, 80),
            "mnist-like": range(80, 90),
            "cifar-like": range(90, 100),
        }
        for category, indices in expected.items():
            for i in indices:
                assert suite[i].category == category, (i, suite[i].category)

    def test_names(self):
        suite = build_suite()
        assert suite[0].name == "ex00"
        assert suite[99].name == "ex99"

    def test_small_indices_cover_categories(self):
        suite = build_suite()
        cats = {suite[i].category for i in default_small_indices()}
        assert len(cats) == 11

    def test_input_ranges(self):
        suite = build_suite()
        assert suite[0].n_inputs == 32      # 16-bit adder
        assert suite[9].n_inputs == 512     # 256-bit adder bits
        assert suite[74].n_inputs == 16     # parity
        assert suite[80].n_inputs == 196    # 14x14 MNIST-like
        assert suite[90].n_inputs == 256    # 16x16 CIFAR-like


class TestGroundTruthFunctions:
    def test_adder_bit_values(self, rng):
        fn = adder_bit(4, 4)
        X = rng.integers(0, 2, size=(100, 8)).astype(np.uint8)
        a = [sum(int(r[i]) << i for i in range(4)) for r in X]
        b = [sum(int(r[4 + i]) << i for i in range(4)) for r in X]
        want = [(x + z) >> 4 & 1 for x, z in zip(a, b, strict=True)]
        assert fn(X).tolist() == want

    def test_divider_by_zero_convention(self):
        fn = divider_bit(4, "quotient")
        X = np.zeros((1, 8), dtype=np.uint8)
        X[0, :4] = [1, 0, 0, 0]  # a=1, b=0
        assert fn(X)[0] == 1  # all-ones quotient -> MSB set

    def test_divider_remainder(self, rng):
        fn = divider_bit(4, "remainder")
        X = rng.integers(0, 2, size=(50, 8)).astype(np.uint8)
        out = fn(X)
        assert set(np.unique(out)) <= {0, 1}

    def test_multiplier_bit(self, rng):
        fn = multiplier_bit(3, 5)
        X = rng.integers(0, 2, size=(64, 6)).astype(np.uint8)
        a = [sum(int(r[i]) << i for i in range(3)) for r in X]
        b = [sum(int(r[3 + i]) << i for i in range(3)) for r in X]
        assert fn(X).tolist() == [((x * z) >> 5) & 1 for x, z in zip(a, b, strict=True)]

    def test_comparator(self, rng):
        fn = comparator(5)
        X = rng.integers(0, 2, size=(80, 10)).astype(np.uint8)
        a = [sum(int(r[i]) << i for i in range(5)) for r in X]
        b = [sum(int(r[5 + i]) << i for i in range(5)) for r in X]
        assert fn(X).tolist() == [int(x > z) for x, z in zip(a, b, strict=True)]

    def test_sqrt_lsb(self):
        import math

        fn = sqrt_bit(8, "lsb")
        X = np.zeros((256, 8), dtype=np.uint8)
        for v in range(256):
            for i in range(8):
                X[v, i] = (v >> i) & 1
        want = [math.isqrt(v) & 1 for v in range(256)]
        assert fn(X).tolist() == want

    def test_symmetric_signatures_are_17_chars(self):
        for sig in SYMMETRIC_SIGNATURES:
            assert len(sig) == 17

    def test_symmetric16(self, rng):
        fn = symmetric16(SYMMETRIC_SIGNATURES[0])
        X = rng.integers(0, 2, size=(200, 16)).astype(np.uint8)
        counts = X.sum(axis=1)
        want = [
            1 if SYMMETRIC_SIGNATURES[0][c] == "1" else 0 for c in counts
        ]
        assert fn(X).tolist() == want

    def test_parity16(self, rng):
        fn = parity(16)
        X = rng.integers(0, 2, size=(100, 16)).astype(np.uint8)
        assert np.array_equal(fn(X), X.sum(axis=1) % 2)

    def test_t481_like_balanced(self, rng):
        fn = t481_like()
        X = rng.integers(0, 2, size=(4000, 16)).astype(np.uint8)
        frac = fn(X).mean()
        assert 0.3 < frac < 0.7

    def test_cordic_deterministic_and_nontrivial(self, rng):
        fn = cordic_sign()
        X = rng.integers(0, 2, size=(500, fn.n_inputs)).astype(np.uint8)
        a = fn(X)
        b = fn(X)
        assert np.array_equal(a, b)
        assert 0.05 < a.mean() < 0.95


class TestRandomCones:
    def test_balanced(self):
        fn = random_cone_function(20, "control", seed=1)
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(2000, 20)).astype(np.uint8)
        assert 0.3 <= fn(X).mean() <= 0.7

    def test_deterministic_across_calls(self):
        f1 = random_cone_function(16, "mixed", seed=2)
        f2 = random_cone_function(16, "mixed", seed=2)
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(100, 16)).astype(np.uint8)
        assert np.array_equal(f1(X), f2(X))

    def test_flavours_differ(self):
        f1 = random_cone_function(16, "control", seed=3)
        f2 = random_cone_function(16, "mixed", seed=3)
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(500, 16)).astype(np.uint8)
        assert not np.array_equal(f1(X), f2(X))


class TestImageLike:
    def test_group_table_matches_paper(self):
        assert GROUP_COMPARISONS[1] == ((1, 3, 5, 7, 9), (0, 2, 4, 6, 8))
        assert GROUP_COMPARISONS[6] == ((1, 7), (3, 8))

    def test_sampler_shapes_and_balance(self, rng):
        model = mnist_like_model()
        sampler = group_comparison_sampler(model, 0)
        X, y = sampler(500, rng)
        assert X.shape == (500, 196)
        assert 0.4 < y.mean() < 0.6

    def test_cifar_harder_than_mnist(self, rng):
        """A fixed-capacity learner must find the CIFAR-like model
        clearly harder — the property that drives the paper's accuracy
        ordering (ex80s easy, ex90s hard)."""
        from repro.ml.forest import RandomForest
        from repro.ml.metrics import accuracy

        def learned_accuracy(model):
            sampler = group_comparison_sampler(model, 0)
            X, y = sampler(2000, rng)
            forest = RandomForest(
                n_trees=9, max_depth=8, feature_fraction=0.3, rng=rng
            ).fit(X[:1500], y[:1500])
            return accuracy(y[1500:], forest.predict(X[1500:]))

        mnist_acc = learned_accuracy(mnist_like_model())
        cifar_acc = learned_accuracy(cifar_like_model())
        assert mnist_acc > cifar_acc + 0.05


class TestProblemsAndScoring:
    def test_sets_disjoint_for_functions(self):
        suite = build_suite()
        p = make_problem(suite[30], n_train=200, n_valid=200, n_test=200)
        seen = {tuple(r) for r in p.train.X}
        assert not any(tuple(r) in seen for r in p.test.X)

    def test_problem_reproducible(self):
        suite = build_suite()
        p1 = make_problem(suite[75], n_train=100, n_valid=100, n_test=100)
        p2 = make_problem(suite[75], n_train=100, n_valid=100, n_test=100)
        assert np.array_equal(p1.train.X, p2.train.X)
        assert np.array_equal(p1.test.y, p2.test.y)

    def test_evaluation_scores_constant(self, small_problem):
        aig = AIG(small_problem.n_inputs)
        aig.set_output(CONST1)
        score = evaluate_solution(
            small_problem, Solution(aig=aig, method="const1")
        )
        assert score.test_accuracy == pytest.approx(
            small_problem.test.y.mean()
        )
        assert score.num_ands == 0
        assert score.legal

    def test_scoring_counts_used_nodes_only(self, small_problem):
        # Satellite regression: Score.num_ands and Solution.is_legal
        # are over used nodes — a deliberately dirty graph (dead logic
        # that was never cone-extracted) must score by what it ships,
        # not be mis-ranked or wrongly rejected as over-cap.
        aig = AIG(small_problem.n_inputs)
        for i in range(1, small_problem.n_inputs):
            aig.add_and(aig.input_lit(0), aig.input_lit(i))  # all dead
        aig.set_output(CONST1)
        raw = aig.num_ands
        assert raw == small_problem.n_inputs - 1
        solution = Solution(aig=aig, method="dirty-const")
        assert solution.num_ands == 0
        assert solution.is_legal(max_nodes=raw - 1)  # raw count would fail
        score = evaluate_solution(
            small_problem, solution, max_nodes=raw - 1
        )
        assert score.num_ands == 0
        assert score.legal

    def test_evaluation_rejects_input_mismatch(self, small_problem):
        aig = AIG(small_problem.n_inputs + 1)
        aig.set_output(CONST1)
        with pytest.raises(ValueError):
            evaluate_solution(small_problem, Solution(aig=aig, method="x"))

    def test_overfit_definition(self, small_problem):
        aig = AIG(small_problem.n_inputs)
        aig.set_output(CONST1)
        score = evaluate_solution(
            small_problem, Solution(aig=aig, method="c")
        )
        assert score.overfit == pytest.approx(
            score.valid_accuracy - score.test_accuracy
        )


class TestSamplingBalance:
    def test_split_fractions_agree(self):
        """Regression: set-order leakage once skewed the three splits'
        label distributions on narrow-input benchmarks."""
        suite = build_suite()
        for idx in (30, 74, 21):
            p = make_problem(suite[idx], n_train=400, n_valid=400,
                             n_test=400)
            fracs = [
                p.train.onset_fraction(),
                p.valid.onset_fraction(),
                p.test.onset_fraction(),
            ]
            spread = max(fracs) - min(fracs)
            assert spread < 0.12, (suite[idx].name, fracs)
