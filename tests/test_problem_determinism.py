"""make_problem guarantees the parallel runner depends on.

Workers re-sample problems inside their own processes, so two
properties are load-bearing: the train/valid/test split must be
disjoint (no leakage), and the same (benchmark, sizes, master_seed)
must yield bit-identical datasets in any process — including a
freshly spawned interpreter with no inherited state.
"""

import multiprocessing

import numpy as np
import pytest

from repro.contest import build_suite, make_problem
from repro.runner import dataset_fingerprint


def _row_ints(X):
    """Each row as an int, for set algebra over input vectors."""
    weights = 1 << np.arange(X.shape[1], dtype=object)
    return {int(row @ weights) for row in X.astype(object)}


class TestSplitDisjointness:
    @pytest.mark.parametrize("idx", [30, 74, 75])
    def test_deterministic_benchmarks_split_disjoint(self, idx):
        suite = build_suite()
        problem = make_problem(suite[idx], n_train=200, n_valid=200,
                               n_test=200, master_seed=0)
        train = _row_ints(problem.train.X)
        valid = _row_ints(problem.valid.X)
        test = _row_ints(problem.test.X)
        # No duplicate rows within a set...
        assert len(train) == 200 and len(valid) == 200 and len(test) == 200
        # ...and none shared across the split.
        assert not train & valid
        assert not train & test
        assert not valid & test


class TestCrossProcessReproducibility:
    def test_fingerprint_stable_in_process(self):
        a = dataset_fingerprint(74, 64, 64, 64, master_seed=3)
        b = dataset_fingerprint(74, 64, 64, 64, master_seed=3)
        assert a == b
        assert dataset_fingerprint(74, 64, 64, 64, master_seed=4) != a

    def test_fingerprint_covers_split_order(self):
        # Swapping sizes reshuffles which rows land in which set.
        assert dataset_fingerprint(74, 64, 32, 32) != \
            dataset_fingerprint(74, 32, 64, 32)

    @pytest.mark.parametrize("idx", [74, 80])  # deterministic + sampler
    def test_spawned_worker_sees_identical_data(self, idx):
        parent = dataset_fingerprint(idx, 48, 48, 48, master_seed=5)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(dataset_fingerprint, (idx, 48, 48, 48, 5))
        assert child == parent
