"""Cube algebra, covers, espresso and Quine-McCluskey."""

import random

import numpy as np
import pytest

from repro.twolevel.cover import Cover, cover_from_samples
from repro.twolevel.cube import Cube
from repro.twolevel.espresso import espresso, espresso_from_samples
from repro.twolevel.quine import prime_implicants, quine_mccluskey


class TestCube:
    def test_from_string_roundtrip(self):
        cube = Cube.from_string("01-1-")
        assert cube.to_string(5) == "01-1-"
        assert cube.num_literals() == 3

    def test_minterm_containment(self):
        cube = Cube.from_string("1-0")
        assert cube.contains_minterm(0b001)
        assert cube.contains_minterm(0b011)
        assert not cube.contains_minterm(0b101)

    def test_cube_containment(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains_cube(small)
        assert not small.contains_cube(big)

    def test_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        c = Cube.from_string("0--")
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_literal_editing(self):
        cube = Cube.from_string("10-")
        assert cube.without_literal(0).to_string(3) == "-0-"
        assert cube.with_literal(2, 1).to_string(3) == "10" + "1"

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(mask=0b01, value=0b10)

    def test_from_minterm(self):
        cube = Cube.from_minterm(0b101, 3)
        assert cube.to_string(3) == "101"

    def test_literals_iteration(self):
        cube = Cube.from_string("0-1")
        assert sorted(cube.literals()) == [(0, 0), (2, 1)]


class TestCover:
    def test_vectorized_eval_matches_minterm_eval(self, rng):
        cover = Cover(
            10,
            [Cube.from_string("1---0-----"), Cube.from_string("--11------")],
        )
        X = rng.integers(0, 2, size=(100, 10)).astype(np.uint8)
        fast = cover.evaluate(X)
        for row, got in zip(X, fast, strict=True):
            m = sum(int(b) << i for i, b in enumerate(row))
            assert got == cover.evaluate_minterm(m)

    def test_universal_cube(self):
        cover = Cover(4, [Cube.full()])
        X = np.zeros((3, 4), dtype=np.uint8)
        assert cover.evaluate(X).tolist() == [1, 1, 1]

    def test_empty_cover_is_zero(self):
        cover = Cover(4, [])
        X = np.ones((3, 4), dtype=np.uint8)
        assert cover.evaluate(X).tolist() == [0, 0, 0]

    def test_remove_contained(self):
        cover = Cover(
            3, [Cube.from_string("1--"), Cube.from_string("10-")]
        )
        reduced = cover.remove_contained()
        assert len(reduced) == 1
        assert reduced.cubes[0].to_string(3) == "1--"

    def test_cover_from_samples_majority(self):
        X = np.array([[0, 1]] * 3 + [[1, 0]] * 2, dtype=np.uint8)
        y = np.array([1, 1, 0, 0, 0], dtype=np.uint8)
        onset, offset, n = cover_from_samples(X, y)
        assert onset == [2]      # 0b10 pattern, majority label 1
        assert offset == [1]     # 0b01 pattern
        assert n == 2

    def test_cover_from_samples_tie_goes_off(self):
        X = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        y = np.array([1, 0], dtype=np.uint8)
        onset, offset, _ = cover_from_samples(X, y)
        assert onset == []
        assert offset == [3]


class TestEspresso:
    def _random_instance(self, rnd):
        n = rnd.randint(3, 7)
        universe = list(range(1 << n))
        rnd.shuffle(universe)
        n_on = rnd.randint(1, 1 << (n - 1))
        n_off = rnd.randint(1, 1 << (n - 1))
        return n, universe[:n_on], universe[n_on : n_on + n_off]

    def test_validity_random(self):
        rnd = random.Random(10)
        for _ in range(40):
            n, onset, offset = self._random_instance(rnd)
            cover = espresso(onset, offset, n)
            assert all(cover.evaluate_minterm(m) for m in onset)
            assert not any(cover.evaluate_minterm(m) for m in offset)

    def test_first_irredundant_validity(self):
        rnd = random.Random(11)
        for _ in range(20):
            n, onset, offset = self._random_instance(rnd)
            cover = espresso(onset, offset, n, first_irredundant=True)
            assert all(cover.evaluate_minterm(m) for m in onset)
            assert not any(cover.evaluate_minterm(m) for m in offset)

    def test_close_to_exact(self):
        rnd = random.Random(12)
        for _ in range(25):
            n, onset, offset = self._random_instance(rnd)
            dcset = [
                m for m in range(1 << n)
                if m not in set(onset) and m not in set(offset)
            ]
            heur = espresso(onset, offset, n)
            exact = quine_mccluskey(onset, dcset, n)
            assert len(heur) <= 2 * max(1, len(exact))

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            espresso([1, 2], [2, 3], 3)

    def test_empty_onset(self):
        assert len(espresso([], [0, 1], 2)) == 0

    def test_empty_offset_collapses_to_tautology(self):
        cover = espresso([0, 3], [], 2)
        assert len(cover) == 1
        assert cover.cubes[0].num_literals() == 0

    def test_from_samples_resolves_contradictions(self, rng):
        X = rng.integers(0, 2, size=(200, 8)).astype(np.uint8)
        y = (X[:, 0] & X[:, 1]).astype(np.uint8)
        # Inject a contradicting duplicate.
        X[10] = X[0]
        y[10] = 1 - y[0]
        cover = espresso_from_samples(X, y)
        acc = (cover.evaluate(X) == y).mean()
        assert acc > 0.95

    def test_generalizes_simple_function(self, rng):
        X = rng.integers(0, 2, size=(400, 12)).astype(np.uint8)
        y = ((X[:, 2] & X[:, 5]) | X[:, 9]).astype(np.uint8)
        cover = espresso_from_samples(X[:300], y[:300])
        test_acc = (cover.evaluate(X[300:]) == y[300:]).mean()
        assert test_acc > 0.9


class TestQuine:
    def test_primes_of_known_function(self):
        # f = x0 x1 + x0' x1' over 2 vars: primes are exactly those 2.
        primes = prime_implicants([0b00, 0b11], [], 2)
        strings = sorted(p.to_string(2) for p in primes)
        assert strings == ["00", "11"]

    def test_dontcares_enlarge_primes(self):
        # onset {00}, dc {01}: prime becomes 0- (x1 free? input0=0).
        cover = quine_mccluskey([0b00], [0b10], 2)
        assert len(cover) == 1
        assert cover.cubes[0].num_literals() == 1

    def test_exact_on_full_truth_tables(self):
        rnd = random.Random(13)
        for _ in range(20):
            n = rnd.randint(2, 4)
            onset = [m for m in range(1 << n) if rnd.random() < 0.5]
            if not onset:
                continue
            cover = quine_mccluskey(onset, [], n)
            for m in range(1 << n):
                assert cover.evaluate_minterm(m) == (m in set(onset))

    def test_empty(self):
        assert len(quine_mccluskey([], [], 3)) == 0
