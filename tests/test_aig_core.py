"""Unit tests for the AIG data structure."""

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST0, CONST1, lit_make, lit_not, lit_var
from tests.conftest import random_aig


class TestLiterals:
    def test_lit_roundtrip(self):
        assert lit_var(lit_make(7)) == 7
        assert lit_var(lit_make(7, True)) == 7
        assert lit_make(7, True) == lit_make(7) | 1

    def test_lit_not_involution(self):
        assert lit_not(lit_not(6)) == 6


class TestConstruction:
    def test_constant_folding(self):
        aig = AIG(2)
        a = aig.input_lit(0)
        assert aig.add_and(CONST0, a) == CONST0
        assert aig.add_and(CONST1, a) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == CONST0
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        x = aig.add_and(a, b)
        y = aig.add_and(b, a)  # commuted
        assert x == y
        assert aig.num_ands == 1

    def test_xor_truth_table(self):
        aig = AIG(2)
        aig.set_output(aig.add_xor(aig.input_lit(0), aig.input_lit(1)))
        assert aig.truth_tables() == [0b0110]

    def test_mux_truth_table(self):
        aig = AIG(3)
        s, t, e = (aig.input_lit(i) for i in range(3))
        aig.set_output(aig.add_mux(s, t, e))
        # s=input0, t=input1, e=input2: out = s ? t : e.
        table = aig.truth_tables()[0]
        for m in range(8):
            s_v, t_v, e_v = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert (table >> m) & 1 == (t_v if s_v else e_v)

    def test_maj3(self):
        aig = AIG(3)
        aig.set_output(aig.add_maj3(*(aig.input_lit(i) for i in range(3))))
        table = aig.truth_tables()[0]
        for m in range(8):
            votes = bin(m).count("1")
            assert (table >> m) & 1 == (1 if votes >= 2 else 0)

    def test_multi_input_gates_empty(self):
        aig = AIG(1)
        assert aig.add_and_multi([]) == CONST1
        assert aig.add_or_multi([]) == CONST0
        assert aig.add_xor_multi([]) == CONST0

    def test_input_index_bounds(self):
        aig = AIG(2)
        with pytest.raises(IndexError):
            aig.input_lit(2)


class TestRollback:
    def test_rollback_removes_nodes_and_strash(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        aig.add_and(a, b)
        state = aig.checkpoint()
        aig.add_and(a, c)
        aig.add_and(b, c)
        aig.set_output(CONST1)
        aig.rollback(state)
        assert aig.num_ands == 1
        assert aig.num_outputs == 0
        # Strash entries for rolled-back nodes must be gone: re-adding
        # must create a fresh (valid) node, not a dangling literal.
        lit = aig.add_and(a, c)
        assert lit_var(lit) < aig.num_vars

    def test_rollback_keeps_prior_strash(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        x = aig.add_and(a, b)
        state = aig.checkpoint()
        aig.add_and(a, lit_not(b))
        aig.rollback(state)
        assert aig.add_and(a, b) == x


class TestStructure:
    def test_levels_and_depth(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        x = aig.add_and(a, b)
        y = aig.add_and(x, a)
        aig.set_output(y)
        assert aig.depth() == 2

    def test_fanout_counts_include_outputs(self):
        aig = AIG(2)
        x = aig.add_and(aig.input_lit(0), aig.input_lit(1))
        aig.set_output(x)
        aig.set_output(lit_not(x))
        counts = aig.fanout_counts()
        assert counts[lit_var(x)] == 2

    def test_extract_cone_drops_dead_nodes(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        keep = aig.add_and(a, b)
        aig.add_and(b, c)  # dead
        aig.set_output(keep)
        compact = aig.extract_cone()
        assert compact.num_ands == 1
        assert compact.truth_tables() == aig.truth_tables()

    def test_extract_cone_preserves_input_count(self):
        aig = AIG(5)
        aig.set_output(aig.input_lit(4))
        compact = aig.extract_cone()
        assert compact.n_inputs == 5

    def test_count_used_ands(self):
        aig = random_aig(4, 30, seed=9)
        used = aig.count_used_ands()
        assert used == aig.extract_cone().num_ands

    def test_copy_is_independent(self):
        aig = random_aig(3, 5, seed=1)
        dup = aig.copy()
        dup.add_and(dup.input_lit(0), dup.input_lit(1))
        assert dup.num_ands >= aig.num_ands


class TestSimulation:
    def test_simulation_matches_truth_table(self):
        aig = random_aig(5, 25, seed=7, n_outputs=2)
        tables = aig.truth_tables()
        grid = np.array(
            [[(m >> i) & 1 for i in range(5)] for m in range(32)],
            dtype=np.uint8,
        )
        sim = aig.simulate(grid)
        for k, table in enumerate(tables):
            for m in range(32):
                assert sim[m, k] == (table >> m) & 1

    def test_constant_output(self):
        aig = AIG(2)
        aig.set_output(CONST1)
        aig.set_output(CONST0)
        out = aig.simulate(np.zeros((3, 2), dtype=np.uint8))
        assert out[:, 0].tolist() == [1, 1, 1]
        assert out[:, 1].tolist() == [0, 0, 0]

    def test_inverted_output(self):
        aig = AIG(1)
        aig.set_output(lit_not(aig.input_lit(0)))
        out = aig.simulate(np.array([[0], [1]], dtype=np.uint8))
        assert out[:, 0].tolist() == [1, 0]

    def test_input_shape_validation(self):
        aig = AIG(3)
        aig.set_output(CONST1)
        with pytest.raises(ValueError):
            aig.simulate_packed(np.zeros((2, 1), dtype=np.uint64))

    def test_truth_table_input_limit(self):
        aig = AIG(21)
        aig.set_output(CONST1)
        with pytest.raises(ValueError):
            aig.truth_tables()
