"""Verilog export, ARFF conversion and the CEC tool."""

import numpy as np
import pytest

from repro.aig.aig import AIG, lit_not
from repro.aig.cec import check_equivalence, simulate_differs
from repro.aig.optimize import compress
from repro.ml.arff import read_arff, write_arff
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.synth.verilog import (
    VerilogEvaluator,
    aig_to_verilog,
    tree_to_verilog,
)
from tests.conftest import random_aig


class TestVerilog:
    def test_aig_verilog_matches_simulation(self, rng):
        aig = random_aig(5, 30, seed=4, n_outputs=2)
        source = aig_to_verilog(aig)
        evaluator = VerilogEvaluator(source)
        X = rng.integers(0, 2, size=(50, 5)).astype(np.uint8)
        sim = aig.simulate(X)
        for row, want in zip(X, sim, strict=True):
            env = {f"x{i}": int(v) for i, v in enumerate(row)}
            out = evaluator.evaluate(env)
            assert out["y0"] == want[0]
            assert out["y1"] == want[1]

    def test_constant_and_inverted_outputs(self):
        aig = AIG(1)
        aig.set_output(1)
        aig.set_output(lit_not(aig.input_lit(0)))
        evaluator = VerilogEvaluator(aig_to_verilog(aig))
        out = evaluator.evaluate({"x0": 1})
        assert out["y0"] == 1
        assert out["y1"] == 0

    def test_tree_verilog_matches_predictions(self, rng):
        X = rng.integers(0, 2, size=(500, 6)).astype(np.uint8)
        y = ((X[:, 0] & X[:, 1]) | X[:, 4]).astype(np.uint8)
        tree = DecisionTree(max_depth=5).fit(X, y)
        evaluator = VerilogEvaluator(tree_to_verilog(tree))
        pred = tree.predict(X)
        for row, want in zip(X[:100], pred[:100], strict=True):
            env = {f"x{i}": int(v) for i, v in enumerate(row)}
            assert evaluator.evaluate(env)["y"] == want

    def test_tree_verilog_requires_fit(self):
        with pytest.raises(RuntimeError):
            tree_to_verilog(DecisionTree())

    def test_module_name(self):
        aig = AIG(1)
        aig.set_output(aig.input_lit(0))
        assert "module counter (" in aig_to_verilog(aig, "counter")


class TestArff:
    def test_roundtrip(self, rng, tmp_path):
        data = Dataset(
            rng.integers(0, 2, size=(40, 7)).astype(np.uint8),
            rng.integers(0, 2, size=40).astype(np.uint8),
        )
        path = tmp_path / "d.arff"
        write_arff(data, path)
        back = read_arff(path)
        assert np.array_equal(back.X, data.X)
        assert np.array_equal(back.y, data.y)

    def test_header_format(self, rng, tmp_path):
        data = Dataset(np.zeros((2, 3), np.uint8), np.zeros(2, np.uint8))
        path = tmp_path / "h.arff"
        write_arff(data, path, relation="ex42")
        text = path.read_text()
        assert "@RELATION ex42" in text
        assert text.count("@ATTRIBUTE") == 4  # 3 inputs + class

    def test_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "bad.arff"
        path.write_text(
            "@RELATION r\n@ATTRIBUTE x0 {0,1}\n@ATTRIBUTE class {0,1}\n"
            "@DATA\n0,1\n0\n"
        )
        with pytest.raises(ValueError):
            read_arff(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.arff"
        path.write_text(
            "% comment\n@RELATION r\n@ATTRIBUTE x0 {0,1}\n"
            "@ATTRIBUTE class {0,1}\n@DATA\n% another\n1,0\n"
        )
        data = read_arff(path)
        assert data.n_samples == 1


class TestCEC:
    def test_equivalent_after_compress(self):
        for seed in range(3):
            aig = random_aig(5, 40, seed=seed)
            opt = compress(aig)
            ok, cex = check_equivalence(aig, opt)
            assert ok and cex is None

    def test_detects_inequivalence(self):
        a = AIG(2)
        a.set_output(a.add_and(a.input_lit(0), a.input_lit(1)))
        b = AIG(2)
        b.set_output(b.add_or(b.input_lit(0), b.input_lit(1)))
        ok, cex = check_equivalence(a, b)
        assert not ok
        assert cex is not None
        # The counterexample really distinguishes them.
        assert a.simulate(cex)[0, 0] != b.simulate(cex)[0, 0]

    def test_interface_mismatch_rejected(self):
        a = AIG(2)
        a.set_output(0)
        b = AIG(3)
        b.set_output(0)
        with pytest.raises(ValueError):
            simulate_differs(a, b)

    def test_simulation_finds_easy_difference(self, rng):
        a = AIG(4)
        a.set_output(a.input_lit(0))
        b = AIG(4)
        b.set_output(lit_not(b.input_lit(0)))
        cex = simulate_differs(a, b, n_patterns=64, rng=rng)
        assert cex is not None

    def test_bdd_catches_rare_difference(self):
        """A difference on exactly one minterm of 16: simulation may
        miss it with few patterns, the BDD proof never does."""
        n = 10
        a = AIG(n)
        a.set_output(a.add_and_multi(a.input_lits()))  # all-ones minterm
        b = AIG(n)
        b.set_output(0)
        ok, cex = check_equivalence(a, b, n_patterns=4)
        assert not ok
        assert cex is not None
        assert a.simulate(cex)[0, 0] != b.simulate(cex)[0, 0]
