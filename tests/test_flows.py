"""Every team flow end-to-end on small problems (integration)."""

import numpy as np
import pytest

from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import TEAM_FLOW_NAMES, TECHNIQUE_NAMES, TECHNIQUES, get_flow
from repro.flows.portfolio import run as portfolio_run


@pytest.fixture(scope="module")
def comparator_problem():
    suite = build_suite()
    return make_problem(suite[30], n_train=250, n_valid=250, n_test=250)


@pytest.fixture(scope="module")
def parity_problem():
    suite = build_suite()
    return make_problem(suite[74], n_train=250, n_valid=250, n_test=250)


@pytest.mark.parametrize("flow_name", sorted(TEAM_FLOW_NAMES))
def test_flow_contract(flow_name, comparator_problem):
    """Every flow returns a legal, better-than-chance solution."""
    solution = get_flow(flow_name).run(comparator_problem, effort="small")
    score = evaluate_solution(comparator_problem, solution)
    assert score.legal, f"{flow_name} exceeded the node cap"
    assert solution.aig.num_outputs == 1
    assert solution.aig.n_inputs == comparator_problem.n_inputs
    assert score.test_accuracy > 0.55, (
        f"{flow_name} barely better than chance: {score.test_accuracy}"
    )


@pytest.mark.parametrize("flow_name", sorted(TEAM_FLOW_NAMES))
def test_flow_deterministic(flow_name, comparator_problem):
    a = get_flow(flow_name).run(comparator_problem, effort="small",
                                master_seed=7)
    b = get_flow(flow_name).run(comparator_problem, effort="small",
                                master_seed=7)
    assert a.aig.num_ands == b.aig.num_ands
    assert np.array_equal(
        a.aig.simulate(comparator_problem.test.X),
        b.aig.simulate(comparator_problem.test.X),
    )


class TestMatchingFlows:
    def test_team01_matches_parity_exactly(self, parity_problem):
        solution = get_flow("team01").run(parity_problem, effort="small")
        score = evaluate_solution(parity_problem, solution)
        assert "match" in solution.method
        assert score.test_accuracy == 1.0

    def test_team07_matches_parity_exactly(self, parity_problem):
        solution = get_flow("team07").run(parity_problem, effort="small")
        score = evaluate_solution(parity_problem, solution)
        assert "match" in solution.method
        assert score.test_accuracy == 1.0

    def test_team10_fails_parity(self, parity_problem):
        """Plain DTs cannot learn wide parity — the paper's recurring
        negative result."""
        solution = get_flow("team10").run(parity_problem, effort="small")
        score = evaluate_solution(parity_problem, solution)
        assert score.test_accuracy < 0.7


class TestTechniquesMatrix:
    def test_every_team_listed(self):
        assert set(TECHNIQUES) == set(TEAM_FLOW_NAMES)

    def test_technique_names_known(self):
        for team, used in TECHNIQUES.items():
            assert used <= set(TECHNIQUE_NAMES), team

    def test_no_single_technique_everywhere(self):
        """Fig. 1's point: the portfolios differ."""
        sets = list(TECHNIQUES.values())
        assert not any(s == sets[0] for s in sets[1:])


class TestPortfolio:
    def test_portfolio_at_least_as_good_as_members(self, comparator_problem):
        flows = ["team10", "team02"]
        member_scores = [
            evaluate_solution(
                comparator_problem,
                get_flow(f).run(comparator_problem, effort="small"),
            ).valid_accuracy
            for f in flows
        ]
        portfolio = portfolio_run(
            comparator_problem, effort="small", flows=flows
        )
        score = evaluate_solution(comparator_problem, portfolio)
        assert score.valid_accuracy >= max(member_scores) - 1e-9
        assert portfolio.metadata["selected_flow"] in flows
