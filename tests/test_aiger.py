"""AIGER file format round-trip tests."""

import pytest

from repro.aig.aig import AIG, lit_not
from repro.aig.aiger import read_aag, read_aiger, write_aag, write_aiger
from tests.conftest import random_aig


@pytest.mark.parametrize("writer,reader", [
    (write_aag, read_aag),
    (write_aiger, read_aiger),
])
class TestRoundTrip:
    def test_random_graphs(self, writer, reader, tmp_path):
        for seed in range(5):
            aig = random_aig(6, 40, seed=seed, n_outputs=3)
            path = tmp_path / f"g{seed}.aig"
            writer(aig, path)
            back = reader(path)
            assert back.n_inputs == aig.n_inputs
            assert back.num_outputs == aig.num_outputs
            assert back.truth_tables() == aig.truth_tables()

    def test_constant_outputs(self, writer, reader, tmp_path):
        aig = AIG(2)
        aig.set_output(0)
        aig.set_output(1)
        path = tmp_path / "const.aig"
        writer(aig, path)
        back = reader(path)
        assert back.truth_tables() == [0, 0b1111]

    def test_inverted_output(self, writer, reader, tmp_path):
        aig = AIG(1)
        aig.set_output(lit_not(aig.input_lit(0)))
        path = tmp_path / "inv.aig"
        writer(aig, path)
        assert reader(path).truth_tables() == [0b01]


class TestFormatDetails:
    def test_aag_header(self, tmp_path):
        aig = AIG(2)
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1)))
        path = tmp_path / "x.aag"
        write_aag(aig, path)
        header = path.read_text().splitlines()[0]
        assert header == "aag 3 2 0 1 1"

    def test_binary_smaller_than_ascii(self, tmp_path):
        aig = random_aig(8, 300, seed=3)
        a = tmp_path / "x.aag"
        b = tmp_path / "x.aig"
        write_aag(aig, a)
        write_aiger(aig, b)
        assert b.stat().st_size < a.stat().st_size

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.aag"
        path.write_text("xyz 1 1 0 1 0\n")
        with pytest.raises(ValueError):
            read_aag(path)

    def test_rejects_latches(self, tmp_path):
        path = tmp_path / "latch.aag"
        path.write_text("aag 2 1 1 1 0\n2\n4 2\n2\n")
        with pytest.raises(ValueError):
            read_aag(path)

    def test_cross_format_equivalence(self, tmp_path):
        aig = random_aig(5, 60, seed=11, n_outputs=2)
        a = tmp_path / "x.aag"
        b = tmp_path / "x.aig"
        write_aag(aig, a)
        write_aiger(aig, b)
        assert read_aag(a).truth_tables() == read_aiger(b).truth_tables()
