"""LUT-network SOP flattening and DOT export."""

import numpy as np
import pytest

from repro.aig.aig import AIG
from repro.aig.dot import aig_to_dot, write_dot
from repro.ml.lutnet import LUTNetwork
from repro.synth.lutnet_sop import SopExplosion, lutnet_to_cover


class TestLutnetSop:
    def test_cover_matches_network(self, rng):
        X = rng.integers(0, 2, size=(600, 8)).astype(np.uint8)
        y = ((X[:, 0] & X[:, 1]) | X[:, 5]).astype(np.uint8)
        net = LUTNetwork(n_layers=2, luts_per_layer=8, lut_size=3,
                         rng=rng).fit(X, y)
        cover = lutnet_to_cover(net)
        Xt = rng.integers(0, 2, size=(300, 8)).astype(np.uint8)
        assert np.array_equal(cover.evaluate(Xt), net.predict(Xt))

    def test_single_layer_exact(self, rng):
        X = rng.integers(0, 2, size=(400, 4)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 3]).astype(np.uint8)
        net = LUTNetwork(n_layers=1, luts_per_layer=4, lut_size=4,
                         rng=rng).fit(X, y)
        cover = lutnet_to_cover(net)
        grid = np.array(
            [[(m >> i) & 1 for i in range(4)] for m in range(16)],
            dtype=np.uint8,
        )
        assert np.array_equal(cover.evaluate(grid), net.predict(grid))

    def test_budget_enforced(self, rng):
        X = rng.integers(0, 2, size=(800, 16)).astype(np.uint8)
        y = (X.sum(axis=1) % 2).astype(np.uint8)  # parity: SOP blows up
        net = LUTNetwork(n_layers=4, luts_per_layer=64, lut_size=4,
                         rng=rng).fit(X, y)
        with pytest.raises(SopExplosion):
            lutnet_to_cover(net, max_cubes=50)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            lutnet_to_cover(LUTNetwork())


class TestDot:
    def test_dot_structure(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        aig.set_output(aig.add_and(a, b ^ 1))
        text = aig_to_dot(aig)
        assert "digraph aig" in text
        assert text.count('shape=box') == 2
        assert text.count("doublecircle") == 1
        assert "style=dashed" in text  # the inverted fanin edge

    def test_dot_skips_dead_nodes(self):
        aig = AIG(2)
        aig.add_and(aig.input_lit(0), aig.input_lit(1))  # dead
        aig.set_output(aig.input_lit(0))
        text = aig_to_dot(aig)
        assert 'label="and"' not in text

    def test_write_dot(self, tmp_path):
        aig = AIG(1)
        aig.set_output(aig.input_lit(0))
        path = tmp_path / "g.dot"
        write_dot(aig, path)
        assert path.read_text().startswith("digraph g {")
