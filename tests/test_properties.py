"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG, lit_not
from repro.aig.build import from_truth_table, ripple_adder
from repro.aig.cec import check_equivalence
from repro.aig.isop import cover_table, full_mask, isop
from repro.aig.optimize import balance, compress, fraig_lite, refactor, rewrite
from repro.twolevel.cube import Cube
from repro.twolevel.espresso import espresso
from repro.utils.bitops import pack_bits, unpack_bits

# ---------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------

bit_matrices = st.integers(1, 200).flatmap(
    lambda n: st.integers(1, 8).flatmap(
        lambda d: st.lists(
            st.lists(st.integers(0, 1), min_size=d, max_size=d),
            min_size=n, max_size=n,
        )
    )
)


@st.composite
def random_aigs(draw):
    n_inputs = draw(st.integers(1, 5))
    n_nodes = draw(st.integers(0, 25))
    aig = AIG(n_inputs)
    pool = list(aig.input_lits()) + [0, 1]
    for _ in range(n_nodes):
        a = draw(st.sampled_from(pool)) ^ draw(st.integers(0, 1))
        b = draw(st.sampled_from(pool)) ^ draw(st.integers(0, 1))
        pool.append(aig.add_and(a, b))
    aig.set_output(draw(st.sampled_from(pool)))
    return aig


# ---------------------------------------------------------------------
# Bit packing
# ---------------------------------------------------------------------


@given(bit_matrices)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(rows):
    X = np.array(rows, dtype=np.uint8)
    assert np.array_equal(unpack_bits(pack_bits(X), X.shape[0]), X)


# ---------------------------------------------------------------------
# AIG invariants
# ---------------------------------------------------------------------


@given(random_aigs())
@settings(max_examples=60, deadline=None)
def test_extract_cone_preserves_function(aig):
    compact = aig.extract_cone()
    assert compact.truth_tables() == aig.truth_tables()
    assert compact.num_ands <= aig.num_ands


@given(random_aigs())
@settings(max_examples=40, deadline=None)
def test_optimization_equivalence(aig):
    tables = aig.truth_tables()
    assert balance(aig).truth_tables() == tables
    assert rewrite(aig).truth_tables() == tables


@given(random_aigs())
@settings(max_examples=25, deadline=None)
def test_every_pass_is_cec_equivalent_and_never_grows(aig):
    """Satellite property: each optimization pass (and the compress
    script) is proven functionally equivalent to its input by CEC
    (random refutation + exact BDD proof) and never increases the
    used-node count — the passes only ever rebuild reachable logic."""
    used_before = aig.count_used_ands()
    for pass_fn in (balance, rewrite, refactor, fraig_lite, compress):
        out = pass_fn(aig)
        equivalent, cex = check_equivalence(aig, out, n_patterns=256)
        assert equivalent, (pass_fn.__name__, cex)
        assert out.num_ands <= used_before, pass_fn.__name__


@given(random_aigs())
@settings(max_examples=40, deadline=None)
def test_simulation_consistent_with_truth_table(aig):
    n = aig.n_inputs
    grid = np.array(
        [[(m >> i) & 1 for i in range(n)] for m in range(1 << n)],
        dtype=np.uint8,
    )
    sim = aig.simulate(grid)[:, 0]
    table = aig.truth_tables()[0]
    for m in range(1 << n):
        assert sim[m] == (table >> m) & 1


@given(st.integers(0, 2**16 - 1), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_from_truth_table_both_methods(table, k):
    table &= full_mask(k)
    sop = from_truth_table(table, k, "sop")
    mux = from_truth_table(table, k, "mux")
    assert sop.truth_tables()[0] == table
    assert mux.truth_tables()[0] == table


@given(st.integers(1, 6), st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
@settings(max_examples=40, deadline=None)
def test_adder_commutes(k, a, b):
    a &= (1 << k) - 1
    b &= (1 << k) - 1
    aig = AIG(2 * k)
    lits = aig.input_lits()
    for bit in ripple_adder(aig, lits[:k], lits[k:]):
        aig.set_output(bit)
    row_ab = np.array(
        [[(a >> i) & 1 for i in range(k)] + [(b >> i) & 1 for i in range(k)]],
        dtype=np.uint8,
    )
    row_ba = np.array(
        [[(b >> i) & 1 for i in range(k)] + [(a >> i) & 1 for i in range(k)]],
        dtype=np.uint8,
    )
    assert np.array_equal(aig.simulate(row_ab), aig.simulate(row_ba))


# ---------------------------------------------------------------------
# ISOP and espresso
# ---------------------------------------------------------------------


@given(st.integers(1, 4), st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
@settings(max_examples=80, deadline=None)
def test_isop_interval(k, f, dc):
    fm = full_mask(k)
    f &= fm
    dc &= fm
    lower = f & ~dc & fm
    upper = (f | dc) & fm
    cover, table = isop(lower, upper, k)
    assert lower & ~table & fm == 0
    assert table & ~upper & fm == 0
    assert cover_table(cover, k) == table


@given(
    st.integers(2, 6),
    st.sets(st.integers(0, 63), min_size=1, max_size=20),
    st.sets(st.integers(0, 63), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_espresso_validity(n, onset, offset):
    onset = {m & ((1 << n) - 1) for m in onset}
    offset = {m & ((1 << n) - 1) for m in offset} - onset
    if not onset or not offset:
        return
    cover = espresso(sorted(onset), sorted(offset), n)
    assert all(cover.evaluate_minterm(m) for m in onset)
    assert not any(cover.evaluate_minterm(m) for m in offset)


# ---------------------------------------------------------------------
# Cube algebra
# ---------------------------------------------------------------------

cubes = st.integers(1, 8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(0, (1 << n) - 1),
        st.integers(0, (1 << n) - 1),
    )
)


@given(cubes)
@settings(max_examples=100, deadline=None)
def test_cube_containment_consistent_with_minterms(params):
    n, mask, value = params
    cube = Cube(mask, value & mask)
    members = [m for m in range(1 << n) if cube.contains_minterm(m)]
    assert len(members) == 1 << (n - cube.num_literals())


@given(cubes, cubes)
@settings(max_examples=100, deadline=None)
def test_cube_intersection_symmetric(p1, p2):
    n1, m1, v1 = p1
    n2, m2, v2 = p2
    a = Cube(m1, v1 & m1)
    b = Cube(m2, v2 & m2)
    assert a.intersects(b) == b.intersects(a)


@given(cubes)
@settings(max_examples=60, deadline=None)
def test_cube_expansion_is_superset(params):
    n, mask, value = params
    cube = Cube(mask, value & mask)
    for var in range(n):
        widened = cube.without_literal(var)
        assert widened.contains_cube(cube)


# ---------------------------------------------------------------------
# Double negation via literals
# ---------------------------------------------------------------------


@given(st.integers(0, 10_000))
def test_literal_complement_involution(lit):
    assert lit_not(lit_not(lit)) == lit
