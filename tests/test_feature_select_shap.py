"""Feature selection scores and Shapley attribution."""

import numpy as np
import pytest

from repro.ml.feature_select import (
    chi2_scores,
    f_classif_scores,
    mutual_info_scores,
    permutation_importance,
    select_k_best,
    select_percentile,
)
from repro.ml.shap import (
    exact_shapley,
    mean_abs_shapley,
    mean_shapley,
    sampling_shapley,
)


def _relevant_problem(rng, n=2000, d=10):
    X = rng.integers(0, 2, size=(n, d)).astype(np.uint8)
    y = ((X[:, 2] & X[:, 5]) | X[:, 8]).astype(np.uint8)
    return X, y


class TestScores:
    @pytest.mark.parametrize(
        "scorer", [chi2_scores, f_classif_scores, mutual_info_scores]
    )
    def test_relevant_features_score_higher(self, rng, scorer):
        X, y = _relevant_problem(rng)
        scores = scorer(X, y)
        relevant = {2, 5, 8}
        top3 = set(np.argsort(-scores)[:3].tolist())
        assert len(top3 & relevant) >= 2

    def test_constant_feature_scores_zero_chi2(self, rng):
        X, y = _relevant_problem(rng)
        X[:, 0] = 0
        assert chi2_scores(X, y)[0] == 0.0

    def test_mutual_info_nonnegative(self, rng):
        X, y = _relevant_problem(rng)
        assert (mutual_info_scores(X, y) >= -1e-9).all()

    def test_select_k_best_sorted_indices(self, rng):
        X, y = _relevant_problem(rng)
        idx = select_k_best(X, y, 4)
        assert np.all(np.diff(idx) > 0)
        assert len(idx) == 4

    def test_select_k_larger_than_d(self, rng):
        X = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        y = (X[:, 0] | X[:, 1]).astype(np.uint8)
        assert len(select_k_best(X, y, 99)) == 5

    def test_select_percentile(self, rng):
        X, y = _relevant_problem(rng)
        assert len(select_percentile(X, y, 50)) == 5

    def test_permutation_importance_ranks_relevant(self, rng):
        X, y = _relevant_problem(rng, n=800)

        def predict(mat):
            return ((mat[:, 2] & mat[:, 5]) | mat[:, 8]).astype(np.uint8)

        imp = permutation_importance(predict, X, y, n_repeats=3, rng=rng)
        top3 = set(np.argsort(-imp)[:3].tolist())
        assert top3 == {2, 5, 8}


class TestShapley:
    def test_sampled_matches_exact_linear(self, rng):
        background = rng.integers(0, 2, size=(50, 5)).astype(np.uint8)

        def f(mat):
            return 2.0 * mat[:, 0] - 1.0 * mat[:, 3]

        x = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        exact = exact_shapley(f, background, x)
        sampled = sampling_shapley(f, background, x,
                                   n_permutations=300, rng=rng)
        assert np.allclose(exact, sampled, atol=0.15)

    def test_efficiency_property(self, rng):
        """Shapley values sum to f(x) - E[f(background)]."""
        background = rng.integers(0, 2, size=(40, 4)).astype(np.uint8)

        def f(mat):
            return (mat[:, 0] & mat[:, 1]).astype(float) + 0.5 * mat[:, 2]

        x = np.ones(4, dtype=np.uint8)
        values = exact_shapley(f, background, x)
        gap = float(f(x[None, :])[0]) - float(np.mean(f(background)))
        assert np.isclose(values.sum(), gap, atol=1e-9)

    def test_irrelevant_feature_gets_zero(self, rng):
        background = rng.integers(0, 2, size=(30, 4)).astype(np.uint8)

        def f(mat):
            return mat[:, 1].astype(float)

        x = np.ones(4, dtype=np.uint8)
        values = exact_shapley(f, background, x)
        assert abs(values[0]) < 1e-12
        assert abs(values[3]) < 1e-12

    def test_exact_rejects_wide(self, rng):
        background = rng.integers(0, 2, size=(5, 13)).astype(np.uint8)
        with pytest.raises(ValueError):
            exact_shapley(lambda m: m[:, 0], background, background[0])

    def test_mean_abs_vs_signed(self, rng):
        background = rng.integers(0, 2, size=(30, 3)).astype(np.uint8)
        # Probe only samples with x0 = 1: for f = -x0 their feature-0
        # attribution is f(x) - E[f] = -1 + mean(bg x0) <= 0.
        samples = np.ones((10, 3), dtype=np.uint8)
        samples[:, 1:] = rng.integers(0, 2, size=(10, 2))

        def f(mat):
            return -1.0 * mat[:, 0]

        # Same seeded draws for both estimators so Jensen's inequality
        # (mean of |v| >= |mean of v|) holds exactly.
        signed = mean_shapley(f, background, samples,
                              n_permutations=50,
                              rng=np.random.default_rng(5))
        absolute = mean_abs_shapley(f, background, samples,
                                    n_permutations=50,
                                    rng=np.random.default_rng(5))
        assert signed[0] <= 0
        assert absolute[0] >= abs(signed[0]) - 1e-9
