"""Shared fixtures for the test suite."""

import random

import numpy as np
import pytest

from repro.aig.aig import AIG


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_aig(n_inputs: int, n_nodes: int, seed: int, n_outputs: int = 1) -> AIG:
    """A random strashed AIG used by many structural tests."""
    rnd = random.Random(seed)
    aig = AIG(n_inputs)
    pool = list(aig.input_lits())
    for _ in range(n_nodes):
        a = rnd.choice(pool) ^ rnd.randint(0, 1)
        b = rnd.choice(pool) ^ rnd.randint(0, 1)
        pool.append(aig.add_and(a, b))
    for k in range(n_outputs):
        aig.set_output(pool[-(1 + 3 * k) if len(pool) > 3 * k else -1])
    return aig


@pytest.fixture
def small_problem():
    """A tiny but non-trivial learning problem (10-bit comparator)."""
    from repro.contest import build_suite, make_problem

    suite = build_suite()
    return make_problem(suite[30], n_train=300, n_valid=300, n_test=300)
