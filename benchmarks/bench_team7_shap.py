"""Figs. 25-27: Team 7's majority network and SHAP analysis.

Fig. 25: a 3-layer MAJ-5 tree approximates a wide majority gate.
Fig. 26: on the multiplier MSB, correlation coefficients show no
pattern while Shapley importance does.
Fig. 27: on a signed comparator, mean Shapley values form two
monotone ramps of opposite polarity over the two operand words.
"""

import numpy as np

from _report import echo
from repro.aig.aig import AIG
from repro.aig.build import maj5_tree
from repro.contest import build_suite, make_problem
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.shap import mean_abs_shapley
from repro.utils.rng import rng_for


def test_fig25_maj5_tree(benchmark, rng_seed=0):
    rng = np.random.default_rng(rng_seed)

    def build_and_measure():
        aig = AIG(125)
        aig.set_output(maj5_tree(aig, aig.input_lits()))
        X = rng.integers(0, 2, size=(3000, 125)).astype(np.uint8)
        got = aig.simulate(X)[:, 0]
        want = (X.sum(axis=1) >= 63).astype(np.uint8)
        return aig, float((got == want).mean())

    aig, agreement = benchmark.pedantic(
        build_and_measure, rounds=1, iterations=1
    )
    echo(f"\n=== Fig. 25: MAJ-5 tree vs true 125-majority ===")
    echo(f"  nodes={aig.num_ands} agreement={100 * agreement:.1f}%")
    # Far cheaper than an exact 125-input majority and well above
    # chance even on uniform inputs, whose popcounts concentrate right
    # at the decision threshold (the approximation's hardest regime).
    assert agreement > 0.7
    assert aig.num_ands < 1500


def _shap_comparator(samples):
    suite = build_suite()
    problem = make_problem(suite[31], n_train=samples, n_valid=samples,
                           n_test=samples)  # 20-bit comparator
    model = GradientBoostedTrees(n_estimators=25, max_depth=4)
    model.fit(problem.train.X, problem.train.y)
    rng = rng_for("bench-shap")
    background = problem.train.X[:60]
    probe = problem.train.X[:40]
    # Per-sample attributions, then the mean conditioned on the bit
    # being set — the quantity whose ramps Fig. 27 plots (the
    # unconditional mean integrates to ~0 by construction).
    from repro.ml.shap import sampling_shapley

    matrix = np.array([
        sampling_shapley(model.decision_margin, background, row,
                         n_permutations=8, rng=rng)
        for row in probe
    ])
    signed = np.zeros(problem.n_inputs)
    for j in range(problem.n_inputs):
        mask = probe[:, j] == 1
        if mask.any():
            signed[j] = matrix[mask, j].mean()
    return problem, signed


def test_fig27_comparator_shap_pattern(benchmark, scale):
    samples = min(scale["samples"], 600)
    problem, signed = benchmark.pedantic(
        lambda: _shap_comparator(samples), rounds=1, iterations=1
    )
    k = problem.n_inputs // 2
    echo("\n=== Fig. 27: mean Shapley values, comparator operands ===")
    echo(f"  word A: {np.round(signed[:k], 2)}")
    echo(f"  word B: {np.round(signed[k:], 2)}")
    # Opposite polarities: the MSB-most informative bits of word A push
    # positive (a > b) and of word B push negative.
    top_a = signed[:k][-3:].sum()
    top_b = signed[k:][-3:].sum()
    assert top_a > 0 > top_b
    # Weight pattern: high bits matter more than low bits.
    assert abs(signed[k - 1]) > abs(signed[0])
    assert abs(signed[2 * k - 1]) > abs(signed[k])


def _shap_vs_correlation(samples):
    suite = build_suite()
    problem = make_problem(suite[30], n_train=samples, n_valid=samples,
                           n_test=samples)
    model = GradientBoostedTrees(n_estimators=25, max_depth=4)
    model.fit(problem.train.X, problem.train.y)
    rng = rng_for("bench-shap26")
    X = problem.train.X
    y = problem.train.y.astype(float)
    corr = np.array([
        np.corrcoef(X[:, j], y)[0, 1] if X[:, j].std() > 0 else 0.0
        for j in range(X.shape[1])
    ])
    importance = mean_abs_shapley(
        model.decision_margin, X[:60], X[:30], n_permutations=8, rng=rng
    )
    return problem, corr, importance


def test_fig26_shap_vs_correlation(benchmark, scale):
    samples = min(scale["samples"], 600)
    problem, corr, importance = benchmark.pedantic(
        lambda: _shap_vs_correlation(samples), rounds=1, iterations=1
    )
    k = problem.n_inputs // 2
    echo("\n=== Fig. 26: |corr| vs mean |SHAP| (comparator) ===")
    echo(f"  |corr|  MSBs: {np.round(np.abs(corr)[[k-1, 2*k-1]], 3)}")
    echo(f"  |SHAP|  MSBs: {np.round(importance[[k-1, 2*k-1]], 3)}")
    # SHAP concentrates importance on the MSBs far more sharply than
    # raw correlation concentrates (the paper's point: SHAP reveals
    # the bit-weight pattern).
    shap_ratio = importance[[k - 1, 2 * k - 1]].mean() / max(
        importance.mean(), 1e-9
    )
    assert shap_ratio > 2.0, "MSBs should dominate Shapley importance"
