"""Table III + Fig. 1: the main per-team comparison.

Regenerates the paper's central table — average test accuracy, AND
count, levels and overfit per team — by running all ten flows over the
scaled benchmark suite, and prints the Fig. 1 technique matrix.

Paper values (full scale): Team 1 wins at 88.69% average accuracy;
accuracies spread over ~62-89%; overfit gaps are mostly small; Team 10
produces by far the smallest circuits (140 ANDs average).  At reduced
scale the asserted *shapes* are: (a) everyone beats chance, (b)
matching-equipped teams (1, 7) land at or near the top, (c) Team 10's
average size stays far below the cap, (d) every circuit is legal.
"""

from _report import echo
from repro.analysis import format_table3, table3
from repro.flows import TECHNIQUE_NAMES, TECHNIQUES


def test_table3(benchmark, contest_run, scale):
    rows = benchmark.pedantic(
        lambda: table3(contest_run.scores_by_team), rounds=1, iterations=1
    )
    echo(f"\n=== Table III (scale={scale['name']}) ===")
    echo(format_table3(rows))

    by_team = {r["team"]: r for r in rows}
    # (a) every team clearly beats chance on average.
    for r in rows:
        assert r["test_accuracy"] > 0.55, r["team"]
    # (b) the matching-equipped flows (teams 1 and 7) rank high: at
    # least one of them is in the top three.
    top3 = {rows[i]["team"] for i in range(3)}
    assert top3 & {"team01", "team07"}
    # (c) Team 10's circuits are small, far below the 5000 cap.
    assert by_team["team10"]["and_gates"] < 500
    # (d) all submitted circuits are legal.
    for r in rows:
        assert r["legal_fraction"] == 1.0, r["team"]
    # (e) overfit gaps are bounded (the paper's worst is 8.7%; leave
    # slack for the small sample sizes).
    for r in rows:
        assert abs(r["overfit"]) < 0.2, r["team"]


def test_per_category_accuracy(benchmark, contest_run, scale):
    """Section V's qualitative per-category observations, quantified:
    learners do worst on the arithmetic categories and best on the
    saturating ones (comparators, symmetric with matching teams)."""
    from repro.analysis import per_category_table
    from repro.contest import build_suite

    suite = build_suite()
    categories = {spec.name: spec.category for spec in suite}
    table = benchmark.pedantic(
        lambda: per_category_table(contest_run.scores_by_team,
                                   categories),
        rounds=1, iterations=1,
    )
    cats = sorted({c for row in table.values() for c in row})
    echo(f"\n=== per-category mean accuracy (scale={scale['name']}) ===")
    echo("  team    " + " ".join(c[:8].rjust(9) for c in cats))
    for team in sorted(table):
        cells = " ".join(
            f"{100 * table[team].get(c, float('nan')):8.1f}%" for c in cats
        )
        echo(f"  {team} {cells}")
    # The matching teams ace whatever arithmetic category is present.
    arithmetic = [c for c in cats if c in ("adder", "comparator")]
    for cat in arithmetic:
        best = max(table[t].get(cat, 0.0) for t in table)
        assert best > 0.9, f"someone should ace {cat}"


def test_fig1_technique_matrix(benchmark):
    matrix = benchmark.pedantic(lambda: TECHNIQUES, rounds=1, iterations=1)
    echo("\n=== Fig. 1: representation/technique matrix ===")
    header = "          " + " ".join(
        name[:7].rjust(8) for name in TECHNIQUE_NAMES
    )
    echo(header)
    for team in sorted(matrix):
        marks = " ".join(
            ("x" if name in matrix[team] else ".").rjust(8)
            for name in TECHNIQUE_NAMES
        )
        echo(f"  {team}  {marks}")
    # The paper's observations: DTs are the most popular technique;
    # only teams 1 and 7 match standard functions; no two identical
    # portfolios.
    dt_users = [t for t, s in matrix.items() if "decision tree" in s]
    assert len(dt_users) >= 6
    matchers = {t for t, s in matrix.items() if "function matching" in s}
    assert matchers == {"team01", "team07"}
