"""The paper's future-work proposals, implemented and measured.

Conclusion: "Future extensions of this contest could target circuits
with multiple outputs and algorithms generating an optimal trade-off
between accuracy and area (instead of a single solution)."

* multi-output: a shared AIG for all adder sum bits should be
  substantially smaller than the sum of its per-output cones
  (sharing factor > 1);
* trade-off: the Pareto flow returns a frontier whose top matches the
  single-solution flow and whose smallest entries are far cheaper.
"""

from _report import echo
from repro.contest import build_suite, make_problem
from repro.contest.multioutput import (
    adder_all_bits,
    evaluate_multioutput,
    make_multioutput_problem,
    shared_tree_flow,
)
from repro.flows.tradeoff import run_tradeoff


def test_multioutput_sharing(benchmark, scale):
    samples = min(scale["samples"] * 4, 3000)

    def run():
        problem = make_multioutput_problem(
            "adder6-all", adder_all_bits(6), n_train=samples,
            n_test=samples // 2,
        )
        aig = shared_tree_flow(problem, max_depth=8)
        return evaluate_multioutput(problem, aig)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    echo("\n=== Future work: multi-output sharing ===")
    echo(f"  per-output acc: "
          f"{[round(a, 3) for a in report['per_output']]}")
    echo(f"  shared ANDs {report['shared_ands']} vs sum-of-cones "
          f"{report['sum_of_cones']} "
          f"(sharing x{report['sharing_factor']:.2f})")
    # Low-order sum bits are exactly learnable.
    assert report["per_output"][0] == 1.0
    # Sharing pays: the merged netlist beats independent cones.
    assert report["sharing_factor"] > 1.05


def test_tradeoff_frontier(benchmark, scale):
    suite = build_suite()
    samples = min(scale["samples"], 800)

    def run():
        problem = make_problem(suite[80], n_train=samples,
                               n_valid=samples, n_test=samples)
        return problem, run_tradeoff(problem, effort="small")

    problem, frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    echo("\n=== Future work: accuracy-area frontier (ex80) ===")
    for point in frontier:
        test_acc = float(
            (point.solution.aig.simulate(problem.test.X)[:, 0]
             == problem.test.y).mean()
        )
        echo(f"  {point.num_ands:5d} ANDs  valid "
              f"{100 * point.valid_accuracy:6.2f}%  test "
              f"{100 * test_acc:6.2f}%")
    assert len(frontier) >= 3
    # The knee again: a mid-frontier point reaches within 5 points of
    # the top at a fraction of its size.
    top = frontier[-1]
    cheap = [
        p for p in frontier
        if p.num_ands <= max(8, top.num_ands // 2)
    ]
    assert cheap, "frontier should include small circuits"
    assert max(p.valid_accuracy for p in cheap) >= top.valid_accuracy - 0.08
