"""Ablation: LUT-network wiring scheme and arity (Team 6).

Team 6 "notice[d] from our experiments that 4-input LUTs returns the
best average numbers across the benchmark suite", and offered two
wiring schemes.  Expected shapes: arity 4 beats arity 2 on average;
arity 6 does not clearly beat 4 (memorization dilutes); the unique
scheme is at least as good as pure random wiring on narrow inputs.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, make_problem
from repro.ml.lutnet import LUTNetwork
from repro.ml.metrics import accuracy
from repro.utils.rng import rng_for

CASES = [30, 50, 60, 80]


def _sweep(samples):
    suite = build_suite()
    results = {}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        row = {}
        for arity in (2, 4, 6):
            for scheme in ("random", "unique"):
                rng = rng_for("bench-lutnet", idx, arity, scheme)
                net = LUTNetwork(
                    n_layers=3, luts_per_layer=64, lut_size=arity,
                    scheme=scheme, rng=rng,
                ).fit(problem.train.X, problem.train.y)
                row[(arity, scheme)] = accuracy(
                    problem.test.y, net.predict(problem.test.X)
                )
        results[suite[idx].name] = row
    return results


def test_lutnet_ablation(benchmark, scale):
    samples = min(scale["samples"], 800)
    results = benchmark.pedantic(
        lambda: _sweep(samples), rounds=1, iterations=1
    )
    echo("\n=== Ablation: LUT arity x wiring scheme ===")
    configs = sorted(next(iter(results.values())))
    header = "  case   " + "  ".join(f"k{a}/{s[:3]}" for a, s in configs)
    echo(header)
    for name, row in results.items():
        cells = "  ".join(f"{100 * row[c]:6.1f}" for c in configs)
        echo(f"  {name} {cells}")
    mean = {
        c: float(np.mean([row[c] for row in results.values()]))
        for c in configs
    }
    by_arity = {
        a: np.mean([v for (ar, _), v in mean.items() if ar == a])
        for a in (2, 4, 6)
    }
    echo(f"  mean by arity: { {a: round(float(v), 3) for a, v in by_arity.items()} }")
    # Team 6's finding: 4-input LUTs are the sweet spot.
    assert by_arity[4] >= by_arity[2] - 0.01
    assert by_arity[4] >= by_arity[6] - 0.03
