"""Shared configuration for the experiment-regeneration benches.

Every bench regenerates one table or figure of the paper.  The scale
knob keeps the default run laptop-friendly:

====================  =========================  ====================
REPRO_SCALE           benchmarks                 samples / effort
====================  =========================  ====================
``tiny`` (default)    one per category (11)      300 / "small"
``small``             two per category (20)      1000 / "small"
``full``              all 100                    6400 / "full"
====================  =========================  ====================

Absolute numbers shift with scale; the *shapes* the paper reports
(who wins, the accuracy-size knee, which benchmarks saturate) hold at
every scale and are asserted by the benches.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.analysis import run_contest
from repro.contest.suite import default_small_indices

import _report


def pytest_terminal_summary(terminalreporter):
    """Re-emit every reproduced table/figure after the run (stdout is
    captured inside tests, so this is what lands in bench_output.txt)."""
    lines = _report.drain()
    if not lines:
        return
    terminalreporter.section("reproduced tables and figures")
    for line in lines:
        terminalreporter.write_line(line)

SCALES = {
    # ex27/ex47 are *wide* multiplier/sqrt instances (128 inputs):
    # unmatchable within the node cap and unlearnable from small
    # samples — they provide the paper's Fig. 3 hard tail.
    "tiny": {
        "indices": [0, 11, 27, 30, 47, 50, 60, 74, 75, 80, 90],
        "samples": 300,
        "effort": "small",
    },
    "small": {
        "indices": default_small_indices(),
        "samples": 1000,
        "effort": "small",
    },
    "full": {
        "indices": list(range(100)),
        "samples": 6400,
        "effort": "full",
    },
}


def scale_config():
    name = os.environ.get("REPRO_SCALE", "tiny")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    cfg = dict(SCALES[name])
    cfg["name"] = name
    return cfg


@pytest.fixture(scope="session")
def scale():
    return scale_config()


@pytest.fixture
def rng():
    import numpy as np

    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def contest_run(scale):
    """One shared all-flows contest run reused by Table III / Figs 2-4.

    This is the expensive part (10 flows x N benchmarks); computing it
    once per session keeps the bench suite honest and fast.
    """
    from repro.flows import TEAM_FLOW_NAMES

    return run_contest(
        scale["indices"],
        list(TEAM_FLOW_NAMES),
        n_train=scale["samples"],
        n_valid=scale["samples"],
        n_test=scale["samples"],
        effort=scale["effort"],
    )
