"""Levelized simulation engine vs. the seed per-node loop.

Every flow, contest score and benchmark funnels through AIG
simulation; this bench records the speedup of the `repro.sim`
levelized engine over the seed simulator (preserved verbatim as
``reference_simulate_packed_all``) on a contest-scale circuit, and
confirms bit-exactness — both directly and through
``cec.check_equivalence`` on randomized AIGs.
"""

import random
import time

from _report import echo

import numpy as np

from repro.aig.aig import AIG
from repro.aig.cec import check_equivalence
from repro.sim import compile_aig, reference_simulate_packed_all
from repro.utils.bitops import pack_bits
from repro.utils.rng import rng_for

N_ANDS = 2000
N_SAMPLES = 4096


def _random_aig(n_inputs, n_ands, seed, n_outputs=8):
    rnd = random.Random(seed)
    aig = AIG(n_inputs)
    pool = list(aig.input_lits())
    while aig.num_ands < n_ands:  # strashing dedupes, so loop to the count
        a = rnd.choice(pool) ^ rnd.randint(0, 1)
        b = rnd.choice(pool) ^ rnd.randint(0, 1)
        pool.append(aig.add_and(a, b))
    for _ in range(n_outputs):
        aig.set_output(rnd.choice(pool) ^ rnd.randint(0, 1))
    return aig


def _best_of_interleaved(fns, repeats=10):
    """Best-of timing with the candidates interleaved per round.

    The bench box is shared and noisy; interleaving means a quiet
    window benefits every candidate equally, so the *ratio* between
    them is far more stable than timing each in its own block.
    """
    bests = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            results[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - start)
    return bests, results


def test_engine_speedup_vs_seed_loop(benchmark):
    aig = _random_aig(32, N_ANDS, seed=2026)
    rng = rng_for("bench-sim-engine")
    X = rng.integers(0, 2, size=(N_SAMPLES, 32)).astype(np.uint8)
    packed = pack_bits(X)

    compiled = compile_aig(aig)
    (seed_time, cold_time, warm_time), (seed_values, cold_values, warm_values) = (
        _best_of_interleaved(
            [
                lambda: reference_simulate_packed_all(aig, packed),
                # Cold: compile + evaluate, what a one-shot caller pays.
                lambda: compile_aig(aig).run_packed_all(packed),
                # Warm: the compiled engine reused across sample sets —
                # the path AIG.simulate* callers get via the cache.
                lambda: compiled.run_packed_all(packed),
            ]
        )
    )
    benchmark.pedantic(
        lambda: compiled.run_packed_all(packed), rounds=3, iterations=1
    )

    assert np.array_equal(seed_values, cold_values)
    assert np.array_equal(seed_values, warm_values)
    cold_speedup = seed_time / cold_time
    warm_speedup = seed_time / warm_time
    echo("\n=== Levelized simulation engine "
         f"({N_ANDS} ANDs x {N_SAMPLES} samples) ===")
    echo(f"  seed per-node loop:     {1e3 * seed_time:8.2f} ms")
    echo(f"  engine (compile+run):   {1e3 * cold_time:8.2f} ms "
         f"({cold_speedup:.1f}x)")
    echo(f"  engine (compiled once): {1e3 * warm_time:8.2f} ms "
         f"({warm_speedup:.1f}x)")
    echo(f"  levels: {compiled.depth}")
    assert warm_speedup >= 5.0
    assert cold_speedup >= 1.5  # even compile+run beats the seed loop


def test_engine_bit_exact_via_cec(benchmark):
    def run():
        checked = 0
        for seed in range(6):
            aig = _random_aig(
                6 + seed, 120 + 40 * seed, seed=seed, n_outputs=3
            )
            # extract_cone rebuilds the graph node by node; proving it
            # equivalent exercises engine simulation inside cec plus
            # the exact BDD back-end.
            ok, cex = check_equivalence(aig, aig.extract_cone())
            assert ok, f"engine mismatch on seed {seed}: {cex}"
            ref = reference_simulate_packed_all(
                aig, np.zeros((aig.n_inputs, 2), dtype=np.uint64)
            )
            assert np.array_equal(
                aig.simulate_packed_all(
                    np.zeros((aig.n_inputs, 2), dtype=np.uint64)
                ),
                ref,
            )
            checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    echo(f"  cec-confirmed engine on {checked} randomized AIGs")
    assert checked == 6
