"""Simulation backends vs. the seed per-node loop.

Every flow, contest score and benchmark funnels through AIG
simulation; this bench records, per executor backend (see
:mod:`repro.sim.backend`), the cost of a cold compile, a warm packed
run and the batched dataset API on a contest-scale circuit — and
confirms bit-exactness against the seed simulator (preserved verbatim
as ``reference_simulate_packed_all``), both directly and through
``cec.check_equivalence`` on randomized AIGs.

The headline asserts:

* the default engine stays >= 5x over the seed per-node loop (the
  original engine floor, any box);
* with numba installed and cores to time reliably, the best backend's
  warm run is >= 5x over the pre-refactor per-level numpy path.
"""

import os
import random
import time

import numpy as np
import pytest

from _report import echo
from repro.aig.aig import AIG
from repro.aig.cec import check_equivalence
from repro.sim import (
    available_backends,
    compile_aig,
    reference_simulate_packed_all,
    simulate_datasets,
)
from repro.utils.bitops import pack_bits
from repro.utils.rng import rng_for

N_ANDS = 2000
N_SAMPLES = 4096
BACKENDS = available_backends()


def _random_aig(n_inputs, n_ands, seed, n_outputs=8):
    rnd = random.Random(seed)
    aig = AIG(n_inputs)
    pool = list(aig.input_lits())
    while aig.num_ands < n_ands:  # strashing dedupes, so loop to the count
        a = rnd.choice(pool) ^ rnd.randint(0, 1)
        b = rnd.choice(pool) ^ rnd.randint(0, 1)
        pool.append(aig.add_and(a, b))
    for _ in range(n_outputs):
        aig.set_output(rnd.choice(pool) ^ rnd.randint(0, 1))
    return aig


def _bench_inputs():
    aig = _random_aig(32, N_ANDS, seed=2026)
    rng = rng_for("bench-sim-engine")
    X = rng.integers(0, 2, size=(N_SAMPLES, 32)).astype(np.uint8)
    return aig, X, pack_bits(X)


def _best_of_interleaved(fns, repeats=10):
    """Best-of timing with the candidates interleaved per round.

    The bench box is shared and noisy; interleaving means a quiet
    window benefits every candidate equally, so the *ratio* between
    them is far more stable than timing each in its own block.
    """
    bests = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            results[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - start)
    return bests, results


def test_engine_speedup_vs_seed_loop(benchmark):
    aig, _, packed = _bench_inputs()

    compiled = compile_aig(aig)  # session-default backend
    (seed_time, cold_time, warm_time), (seed_values, cold_values, warm_values) = (
        _best_of_interleaved(
            [
                lambda: reference_simulate_packed_all(aig, packed),
                # Cold: compile + evaluate, what a one-shot caller pays.
                lambda: compile_aig(aig).run_packed_all(packed),
                # Warm: the compiled engine reused across sample sets —
                # the path AIG.simulate* callers get via the cache.
                lambda: compiled.run_packed_all(packed),
            ]
        )
    )
    benchmark.pedantic(
        lambda: compiled.run_packed_all(packed), rounds=3, iterations=1
    )

    assert np.array_equal(seed_values, cold_values)
    assert np.array_equal(seed_values, warm_values)
    cold_speedup = seed_time / cold_time
    warm_speedup = seed_time / warm_time
    echo("\n=== Levelized simulation engine "
         f"({N_ANDS} ANDs x {N_SAMPLES} samples, "
         f"backend {compiled.backend!r}) ===")
    echo(f"  seed per-node loop:     {1e3 * seed_time:8.2f} ms")
    echo(f"  engine (compile+run):   {1e3 * cold_time:8.2f} ms "
         f"({cold_speedup:.1f}x)")
    echo(f"  engine (compiled once): {1e3 * warm_time:8.2f} ms "
         f"({warm_speedup:.1f}x)")
    echo(f"  levels: {compiled.depth}")
    assert warm_speedup >= 5.0
    assert cold_speedup >= 1.5  # even compile+run beats the seed loop


def test_backend_matrix_speedup():
    """Warm-run matrix over every available backend, one circuit.

    The pre-refactor engine is exactly today's ``numpy`` backend (the
    per-level whole-array path), so the >= 5x acceptance floor for the
    refactor is: best backend warm run vs ``numpy`` warm run.  That
    ratio needs a JIT backend — asserted only where numba is installed
    and the box has cores to time reliably (the CI benches job); the
    matrix itself runs and bit-checks everywhere.
    """
    aig, _, packed = _bench_inputs()
    engines = {b: compile_aig(aig, backend=b) for b in BACKENDS}
    for engine in engines.values():
        engine.run_packed_all(packed)  # JIT/arena warm-up out of band
    times, results = _best_of_interleaved(
        [
            (lambda e=e: e.run_packed_all(packed))
            for e in engines.values()
        ]
    )
    warm = dict(zip(engines, times, strict=True))
    cores = os.cpu_count() or 1
    echo(f"\n=== Backend warm-run matrix ({N_ANDS} ANDs x "
         f"{N_SAMPLES} samples, {cores} cores) ===")
    reference = results[0]
    for (name, t), out in zip(warm.items(), results, strict=True):
        assert np.array_equal(out, reference), name  # bit-identical
        echo(f"  {name:<6} {1e3 * t:8.3f} ms "
             f"({warm['numpy'] / t:5.2f}x vs numpy)")
    best = min(warm, key=warm.get)
    best_speedup = warm["numpy"] / warm[best]
    echo(f"  best: {best} at {best_speedup:.2f}x over the "
         f"pre-refactor numpy path")
    if cores >= 4 and "numba" in BACKENDS:
        assert best_speedup >= 5.0, (
            f"best backend {best} only {best_speedup:.2f}x over numpy"
        )
        # The fused arena path must also never lose to the
        # allocate-per-call numpy path by more than noise.
        assert warm["fused"] <= warm["numpy"] * 1.25
    else:
        echo(f"  [{cores}-core box, numba "
             f"{'present' if 'numba' in BACKENDS else 'absent'}: "
             f"5x wall-clock assert skipped; CI benches enforce it]")


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_cold_compile(benchmark, backend_name):
    """Program build + executor construction + first run, per backend."""
    aig, _, packed = _bench_inputs()
    compile_aig(aig, backend=backend_name).run_packed_all(packed)  # JIT warm
    out = benchmark.pedantic(
        lambda: compile_aig(aig, backend=backend_name).run_packed_all(packed),
        rounds=3, iterations=1,
    )
    assert np.array_equal(out, reference_simulate_packed_all(aig, packed))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_warm_run(benchmark, backend_name):
    """Reused engine on fresh packed words, per backend."""
    aig, _, packed = _bench_inputs()
    compiled = compile_aig(aig, backend=backend_name)
    compiled.run_packed_all(packed)
    benchmark.pedantic(
        lambda: compiled.run_packed_all(packed), rounds=5, iterations=1
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_batched_datasets(benchmark, backend_name):
    """The batched dataset API (one packing, one engine pass), per backend."""
    aig, X, _ = _bench_inputs()
    mats = [X[:1024], X[1024:2048], X[2048:]]
    ref = simulate_datasets(aig, mats, backend="numpy")
    outs = benchmark.pedantic(
        lambda: simulate_datasets(aig, mats, backend=backend_name),
        rounds=3, iterations=1,
    )
    for r, g in zip(ref, outs, strict=True):
        assert np.array_equal(r, g)


def test_engine_bit_exact_via_cec(benchmark):
    def run():
        checked = 0
        for seed in range(6):
            aig = _random_aig(
                6 + seed, 120 + 40 * seed, seed=seed, n_outputs=3
            )
            # extract_cone rebuilds the graph node by node; proving it
            # equivalent exercises engine simulation inside cec plus
            # the exact BDD back-end.
            ok, cex = check_equivalence(aig, aig.extract_cone())
            assert ok, f"engine mismatch on seed {seed}: {cex}"
            ref = reference_simulate_packed_all(
                aig, np.zeros((aig.n_inputs, 2), dtype=np.uint64)
            )
            assert np.array_equal(
                aig.simulate_packed_all(
                    np.zeros((aig.n_inputs, 2), dtype=np.uint64)
                ),
                ref,
            )
            checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    echo(f"  cec-confirmed engine on {checked} randomized AIGs")
    assert checked == 6
