"""Figs. 11 and 12: Team 2's J48-vs-PART comparison.

The paper compares the two classifiers on the ten functions where they
diverge most, finding (i) large per-benchmark differences (up to
~30%), (ii) close *average* accuracy (~1% apart), and (iii) no
consistent size winner — their argument for classifier diversity.
We run both on a benchmark spread and assert those three shapes.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, make_problem
from repro.flows.common import aig_accuracy
from repro.ml.decision_tree import DecisionTree
from repro.ml.rules import PartRuleLearner
from repro.synth.from_rules import rules_to_aig
from repro.synth.from_sop import cover_to_aig

CASES = [0, 21, 30, 50, 60, 74, 75, 80, 90]


def _compare(samples):
    suite = build_suite()
    rows = {}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        merged = problem.merged_train_valid()
        tree = DecisionTree().fit(merged.X, merged.y)
        tree.prune(0.25)
        j48_aig = cover_to_aig(tree.to_cover()).extract_cone()
        rules = PartRuleLearner(confidence_factor=0.25).fit(
            merged.X, merged.y
        )
        part_aig = rules_to_aig(rules).extract_cone()
        rows[suite[idx].name] = {
            "j48": (aig_accuracy(j48_aig, problem.test),
                    j48_aig.num_ands),
            "part": (aig_accuracy(part_aig, problem.test),
                     part_aig.num_ands),
        }
    return rows


def test_fig11_fig12_j48_vs_part(benchmark, scale):
    samples = min(scale["samples"], 800)
    rows = benchmark.pedantic(
        lambda: _compare(samples), rounds=1, iterations=1
    )
    echo("\n=== Figs. 11/12: J48 vs PART ===")
    echo(f"  {'case':6s} {'J48 acc':>8} {'PART acc':>9} "
          f"{'J48 ands':>9} {'PART ands':>10}")
    for name, row in rows.items():
        echo(f"  {name:6s} {100 * row['j48'][0]:7.1f}% "
              f"{100 * row['part'][0]:8.1f}% "
              f"{row['j48'][1]:9d} {row['part'][1]:10d}")

    j48_avg = np.mean([r["j48"][0] for r in rows.values()])
    part_avg = np.mean([r["part"][0] for r in rows.values()])
    echo(f"  averages: J48 {100 * j48_avg:.2f}% "
          f"PART {100 * part_avg:.2f}%")
    # (ii) averages close (paper: ~1%; allow 6 points at small scale).
    assert abs(j48_avg - part_avg) < 0.06
    # (i) individual benchmarks diverge strongly (paper: up to 29.5%).
    max_gap = max(
        abs(r["j48"][0] - r["part"][0]) for r in rows.values()
    )
    echo(f"  max per-case accuracy gap: {100 * max_gap:.1f}%")
    assert max_gap > 0.03, "classifier choice should matter per case"
    # (iii) sizes diverge strongly per benchmark too.  Deviation from
    # the paper noted in EXPERIMENTS.md: our PART priority networks
    # are consistently smaller than the J48 path covers (WEKA's PART
    # emits more rules than our partial-tree learner), so the paper's
    # mixed size ordering does not reproduce — the size *divergence*
    # does.
    ratios = [
        max(r["j48"][1], r["part"][1]) / max(1, min(r["j48"][1],
                                                    r["part"][1]))
        for r in rows.values()
    ]
    assert max(ratios) > 1.5
