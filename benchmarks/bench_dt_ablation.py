"""Ablation: DT impurity criterion and functional decomposition.

Two design choices DESIGN.md calls out:
* entropy vs gini — the paper's teams used both; expected shape: near
  identical accuracy on the contest-style tasks (Team 5 observed
  'both metrics led to very similar results');
* Team 8's functional-decomposition fallback — expected shape: it
  rescues XOR-at-the-root cases that plain gain-splitting loses, and
  does not hurt the ordinary cases.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, make_problem
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import accuracy

CASES = [30, 50, 60, 80]


def _criterion_sweep(samples):
    suite = build_suite()
    rows = {}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        row = {}
        for criterion in ("entropy", "gini"):
            tree = DecisionTree(max_depth=8, criterion=criterion)
            tree.fit(problem.train.X, problem.train.y)
            row[criterion] = accuracy(
                problem.test.y, tree.predict(problem.test.X)
            )
        rows[suite[idx].name] = row
    return rows


def test_criterion_ablation(benchmark, scale):
    samples = min(scale["samples"], 800)
    rows = benchmark.pedantic(
        lambda: _criterion_sweep(samples), rounds=1, iterations=1
    )
    echo("\n=== Ablation: entropy vs gini ===")
    gaps = []
    for name, row in rows.items():
        echo(f"  {name}: entropy {100 * row['entropy']:6.2f}%  "
              f"gini {100 * row['gini']:6.2f}%")
        gaps.append(abs(row["entropy"] - row["gini"]))
    assert float(np.mean(gaps)) < 0.05, "criteria should agree closely"


def test_functional_decomposition_ablation(benchmark, rng):
    def run():
        X = rng.integers(0, 2, size=(3000, 8)).astype(np.uint8)
        y = (X[:, 6] ^ X[:, 7]).astype(np.uint8)
        plain = DecisionTree(max_depth=2).fit(X[:2000], y[:2000])
        decomp = DecisionTree(max_depth=2, decomposition_tau=0.05).fit(
            X[:2000], y[:2000]
        )
        return (
            accuracy(y[2000:], plain.predict(X[2000:])),
            accuracy(y[2000:], decomp.predict(X[2000:])),
        )

    plain_acc, decomp_acc = benchmark.pedantic(run, rounds=1,
                                               iterations=1)
    echo(f"\n  XOR root split: plain {100 * plain_acc:.1f}% vs "
          f"decomposition {100 * decomp_acc:.1f}%")
    # Team 8's claim: decomposition finds the XOR structure a gain
    # split misses at depth 2.
    assert decomp_acc >= plain_acc
    assert decomp_acc > 0.9
