"""Figs. 5 and 6: Team 1's preliminary experiment.

ESPRESSO vs LUT network vs random forest run as single methods over a
benchmark spread, reporting test accuracy (Fig. 5) and AIG size
(Fig. 6).  Paper shape: "Generally Random forests works best, but LUT
network works better in a few cases among case 90-99"; all methods
fail (≈50%) on the wide adder/multiplier/sqrt cases; ESPRESSO always
stays well under 5000 nodes because it conforms to the training
minterms.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, make_problem
from repro.flows.common import aig_accuracy
from repro.ml.forest import RandomForest
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_lutnet import lutnet_to_aig
from repro.synth.from_sop import cover_to_aig
from repro.twolevel.espresso import espresso_from_samples
from repro.utils.rng import rng_for

CASES = [0, 21, 30, 41, 60, 75, 80, 90]  # easy + hard spread


def _run_methods(samples):
    suite = build_suite()
    results = {}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        rng = rng_for("bench-team1", idx)
        row = {}
        cover = espresso_from_samples(
            problem.train.X, problem.train.y, first_irredundant=True
        )
        esp_aig = cover_to_aig(cover).extract_cone()
        row["espresso"] = (aig_accuracy(esp_aig, problem.test),
                           esp_aig.num_ands)
        net = LUTNetwork(n_layers=3, luts_per_layer=64, lut_size=4,
                         rng=rng).fit(problem.train.X, problem.train.y)
        lut_aig = lutnet_to_aig(net).extract_cone()
        row["lutnet"] = (aig_accuracy(lut_aig, problem.test),
                         lut_aig.num_ands)
        forest = RandomForest(n_trees=9, max_depth=8,
                              feature_fraction=0.5, rng=rng)
        forest.fit(problem.train.X, problem.train.y)
        rf_aig = forest_to_aig(forest).extract_cone()
        row["forest"] = (aig_accuracy(rf_aig, problem.test),
                         rf_aig.num_ands)
        results[suite[idx].name] = row
    return results


def test_fig5_fig6_single_methods(benchmark, scale):
    samples = min(scale["samples"], 1000)
    results = benchmark.pedantic(
        lambda: _run_methods(samples), rounds=1, iterations=1
    )
    echo(f"\n=== Figs. 5/6: single-method accuracy and size ===")
    echo(f"  {'case':6s} {'espresso':>16} {'lutnet':>16} {'forest':>16}")
    for name, row in results.items():
        cells = "".join(
            f"  {100 * acc:6.1f}% {ands:6d}" for acc, ands in row.values()
        )
        echo(f"  {name:6s}{cells}")

    accs = {m: np.mean([row[m][0] for row in results.values()])
            for m in ("espresso", "lutnet", "forest")}
    echo(f"  averages: {accs}")
    # Fig. 5 shape: forests are the best single method on average.
    assert accs["forest"] >= accs["lutnet"] - 0.02
    assert accs["forest"] >= accs["espresso"] - 0.02
    # All methods near-chance on the wide multiplier middle bit (ex21
    # analogue of the paper's failures on 20-29 / 40-49).
    for method in ("espresso", "lutnet", "forest"):
        assert results["ex21"][method][0] < 0.75
    # Fig. 6 shape: espresso covers stay bounded by the sample count.
    for name, row in results.items():
        assert row["espresso"][1] < 40 * samples
