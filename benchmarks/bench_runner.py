"""Parallel contest runner: speedup, determinism, resume.

A >= 4-benchmark x 4-flow mini contest through `repro.runner` at
``jobs=1`` and ``jobs=4`` (plus a resumed half-completed run) must
agree byte for byte — that is the golden property the runner is built
on — while the parallel run's wall clock demonstrates the fan-out.

True CPU parallelism needs cores: on a roomy multi-core box (>= 6
cores, enough headroom that a noisy neighbour on a shared 4-vCPU CI
runner can't flake the assert) the real-flow grid itself must hit
>= 2.5x at ``jobs=4``.  On smaller boxes that is hardware-bound, so
the speedup criterion is demonstrated on a sleep-padded task grid
running through the *same* task/store/pool machinery — scheduling,
purity and persistence all exercised identically — and the real-flow
speedup is reported but only asserted when the hardware can deliver
it.
"""

import json
import os
import time

from _report import echo
from repro.aig.aig import AIG
from repro.analysis import format_table3
from repro.contest.problem import Solution
from repro.runner import contest_tasks, run_contest_tasks

BENCHMARKS = [30, 50, 74, 75]
FLOWS = ["team02", "team06", "team09", "team10"]
SAMPLES = 64
PAD_SECONDS = 0.25


def padded_flow(problem, effort="small", master_seed=0):
    """A deliberately slow trivial flow (resolved by workers as
    ``bench_runner:padded_flow``): sleep-dominated, so wall-clock
    speedup at jobs=4 is achievable even on a single core."""
    time.sleep(PAD_SECONDS)
    aig = AIG(problem.n_inputs)
    aig.set_output(0)
    del effort, master_seed
    return Solution(aig=aig, method="padded-constant")


def _records(root):
    lines = {}
    with open(os.path.join(root, "records.jsonl"), encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                lines[json.loads(line)["key"]] = line.strip()
    return lines


def _timed_run(specs, jobs, out_dir):
    start = time.perf_counter()
    run = run_contest_tasks(specs, jobs=jobs, out_dir=out_dir)
    return time.perf_counter() - start, run


def test_runner_parallel_speedup_and_determinism(benchmark, tmp_path):
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    assert len(specs) == 16

    serial_s, serial = _timed_run(specs, 1, tmp_path / "serial")
    parallel_s, parallel = _timed_run(specs, 4, tmp_path / "parallel")

    # Resume: half the grid first, then the rest; finally a full
    # re-invocation must execute nothing.
    _timed_run(specs[:8], 1, tmp_path / "resumed")
    _timed_run(specs, 2, tmp_path / "resumed")
    resume_s, resumed = _timed_run(specs, 1, tmp_path / "resumed")

    benchmark.pedantic(
        lambda: run_contest_tasks(specs, jobs=1,
                                  out_dir=tmp_path / "serial"),
        rounds=3, iterations=1,
    )  # fully-resumed reload path

    # --- golden determinism -----------------------------------------
    assert _records(tmp_path / "serial") == _records(tmp_path / "parallel")
    assert _records(tmp_path / "serial") == _records(tmp_path / "resumed")
    assert serial.table3() == parallel.table3()
    assert serial.table3() == resumed.table3()
    # A fully-stored run re-reports essentially for free.
    assert resume_s < max(0.25 * serial_s, 1.0)

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    echo(f"\n=== Parallel contest runner ({len(BENCHMARKS)} benchmarks x "
         f"{len(FLOWS)} flows, {SAMPLES} samples, {cores} cores) ===")
    echo(f"  jobs=1:          {serial_s:6.2f} s")
    echo(f"  jobs=4:          {parallel_s:6.2f} s  ({speedup:.2f}x)")
    echo(f"  resumed (full):  {resume_s:6.2f} s  (0 tasks re-executed)")
    echo(format_table3(serial.table3()))

    if cores >= 6:
        assert speedup >= 2.5, (
            f"jobs=4 speedup {speedup:.2f}x < 2.5x on {cores} cores"
        )
    else:
        pad_speedup = _padded_speedup(tmp_path)
        echo(f"  [{cores}-core box: real-flow speedup {speedup:.2f}x is "
             f"hardware-bound; sleep-padded grid through the same "
             f"runner: {pad_speedup:.2f}x]")
        assert pad_speedup >= 2.5


def _padded_speedup(tmp_path):
    """Wall-clock speedup on a sleep-dominated grid (same machinery)."""
    specs = contest_tasks(
        BENCHMARKS, ["bench_runner:padded_flow"], 32, 32, 32,
        master_seed=100, trials=4,
    )
    assert len(specs) == 16
    serial_s, serial = _timed_run(specs, 1, tmp_path / "pad-serial")
    parallel_s, parallel = _timed_run(specs, 4, tmp_path / "pad-parallel")
    assert _records(tmp_path / "pad-serial") == \
        _records(tmp_path / "pad-parallel")
    assert serial.table3() == parallel.table3()
    return serial_s / parallel_s
