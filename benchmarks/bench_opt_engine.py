"""NPN-library rewriting engine: speedup, parity, recursion safety.

``compress`` post-processes every candidate of every flow x benchmark
x seed, which made the seed's build-measure-rollback pass loop the
hottest remaining path.  This bench races the NPN-library engine
(:mod:`repro.aig.opt.passes`) against the pinned seed implementation
(:mod:`repro.aig.opt.reference`) on contest-scale learned circuits and
asserts the engine contract:

- aggregate wall-clock speedup >= 3x (the acceptance bar; measured
  4-5x on a dev box) with a lenient 2x floor on single-core boxes,
  where timer noise is the only honest caveat — the win is
  algorithmic, not parallelism;
- the optimized output is never larger than the reference output
  (NPN library + fraig-lite can only find *more* sharing);
- ``compress`` completes on a 5000-node chain-shaped graph, where the
  seed's recursive cone walks blew the Python recursion limit.
"""

import os
import time

import numpy as np

from _report import echo
from repro.aig.aig import AIG
from repro.aig.build import parity_chain, symmetric_function
from repro.aig.opt.reference import reference_compress
from repro.aig.optimize import compress
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_sop import cover_to_aig
from repro.utils.rng import rng_for


def _victims():
    """Contest-scale learned circuits (the finalize_aig diet)."""
    rng = rng_for("bench-opt-engine")
    out = []
    # Decision trees that partly memorize a hard symmetric target:
    # wide path covers, exactly what the DT/forest flows synthesize.
    X = rng.integers(0, 2, size=(4000, 40)).astype(np.uint8)
    y = (X[:, :24].sum(axis=1) % 3 == 0).astype(np.uint8)
    tree = DecisionTree(max_depth=20).fit(X, y)
    out.append(("dt-3k", cover_to_aig(tree.to_cover()).extract_cone()))
    X2 = rng.integers(0, 2, size=(1500, 32)).astype(np.uint8)
    y2 = (X2[:, :20].sum(axis=1) % 3 == 0).astype(np.uint8)
    tree2 = DecisionTree(max_depth=16).fit(X2, y2)
    out.append(("dt-1k", cover_to_aig(tree2.to_cover()).extract_cone()))
    aig = AIG(12)
    aig.set_output(
        symmetric_function(aig, aig.input_lits(), "0110100101101")
    )
    out.append(("sym-12", aig.extract_cone()))
    return out


def test_opt_engine_speedup_and_parity(benchmark):
    victims = _victims()
    rows = []
    ref_total = new_total = 0.0
    for name, aig in victims:
        start = time.perf_counter()
        ref = reference_compress(aig)
        ref_s = time.perf_counter() - start
        start = time.perf_counter()
        new = compress(aig)
        new_s = time.perf_counter() - start
        ref_total += ref_s
        new_total += new_s
        rows.append((name, aig.num_ands, ref_s, ref.num_ands, new_s,
                     new.num_ands))

    benchmark.pedantic(
        lambda: compress(victims[1][1]), rounds=3, iterations=1
    )

    speedup = ref_total / new_total
    cores = os.cpu_count() or 1
    echo("\n=== NPN-library rewriting engine vs seed compress ===")
    for name, size, ref_s, ref_n, new_s, new_n in rows:
        echo(f"  {name:8s} {size:5d} nodes | seed {ref_s:6.2f}s -> {ref_n:5d}"
             f" | engine {new_s:6.2f}s -> {new_n:5d}"
             f" | {ref_s / new_s:.2f}x")
    echo(f"  aggregate: seed {ref_total:.2f}s / engine {new_total:.2f}s"
         f" = {speedup:.2f}x ({cores} cores)")

    # Quality parity: table-lookup rewriting plus fraig-lite must never
    # ship a larger circuit than the seed's exhaustive resynthesis.
    for name, _, _, ref_n, _, new_n in rows:
        assert new_n <= ref_n, (name, new_n, ref_n)
    # The speedup is algorithmic, so it holds on one core too; the
    # relaxed floor there only absorbs timer noise on starved boxes
    # (same spirit as bench_runner's cpu_count gate).
    floor = 3.0 if cores >= 2 else 2.0
    assert speedup >= floor, f"speedup {speedup:.2f}x < {floor}x"


def test_opt_engine_chain_safety(benchmark):
    # The seed's recursive cone walks overflowed on graphs like this;
    # the iterative engine must finish and stay exact.
    aig = parity_chain(n_inputs=4, n_nodes=5000)
    assert aig.num_ands >= 5000

    out = benchmark.pedantic(
        lambda: compress(aig), rounds=1, iterations=1
    )
    assert out.truth_tables() == aig.truth_tables()
    assert out.num_ands <= aig.count_used_ands()
    echo("\n=== compress on a 5000-node parity chain ===")
    echo(f"  {aig.num_ands} nodes, depth {aig.depth()} -> "
         f"{out.num_ands} nodes (no RecursionError)")
