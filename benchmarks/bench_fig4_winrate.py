"""Fig. 4: which team wins the most benchmarks / is in the top 1%.

Paper shape: wins are *spread* over several teams (Team 3 led with 42
of 100, followed by Teams 7 and 1) — no team wins everything, and the
average-accuracy winner (Team 1) is not the per-benchmark win-count
leader.  We assert the spread: at least two teams win something and no
team wins every benchmark; top-1% counts dominate best counts.
"""

from _report import echo
from repro.analysis import win_rates


def test_fig4_win_rates(benchmark, contest_run, scale):
    wins = benchmark.pedantic(
        lambda: win_rates(contest_run.scores_by_team),
        rounds=1, iterations=1,
    )
    n_benchmarks = len(next(iter(contest_run.scores_by_team.values())))
    echo(f"\n=== Fig. 4: win counts over {n_benchmarks} benchmarks "
          f"(scale={scale['name']}) ===")
    for team in sorted(wins, key=lambda t: -wins[t]["best"]):
        echo(f"  {team}: best={wins[team]['best']:3d} "
              f"top1%={wins[team]['top1pct']:3d}")

    winners = [t for t, w in wins.items() if w["best"] > 0]
    assert len(winners) >= 2, "wins should be spread across teams"
    assert max(w["best"] for w in wins.values()) < n_benchmarks, (
        "no single team dominates every benchmark"
    )
    for team, w in wins.items():
        assert w["top1pct"] >= w["best"], team
