"""Fig. 2: accuracy-size trade-off across teams and the virtual best.

Paper claims reproduced in shape: the virtual-best Pareto curve rises
steeply then flattens — "while 91% accuracy requires about 1141 gates,
a reduction in accuracy of merely 2% requires a circuit of only half
that size".  We assert the analogous knee: moving down 2 accuracy
points from the top of the frontier costs at most ~60% of the size.
"""

import math

from _report import echo
from repro.analysis import (
    accuracy_size_tradeoff,
    size_needed_for_accuracy,
    table3,
)


def test_fig2_pareto(benchmark, contest_run, scale):
    frontier = benchmark.pedantic(
        lambda: accuracy_size_tradeoff(contest_run.scores_by_team),
        rounds=1, iterations=1,
    )
    echo(f"\n=== Fig. 2: virtual-best Pareto (scale={scale['name']}) ===")
    for size, acc in frontier:
        echo(f"  avg size {size:8.1f}  avg accuracy {100 * acc:6.2f}%")
    rows = table3(contest_run.scores_by_team)
    echo("  -- team averages ('x' marks in the figure) --")
    for r in rows:
        echo(f"  {r['team']}: size {r['and_gates']:8.1f} "
              f"acc {100 * r['test_accuracy']:6.2f}%")

    assert len(frontier) >= 2, "frontier should have multiple points"
    top_acc = frontier[-1][1]
    top_size = frontier[-1][0]
    relaxed = size_needed_for_accuracy(frontier, top_acc - 0.02)
    if not math.isnan(relaxed) and relaxed != top_size:
        ratio = relaxed / top_size
        echo(f"  knee: acc {100*top_acc:.2f}% needs {top_size:.0f}, "
              f"{100*(top_acc-0.02):.2f}% needs {relaxed:.0f} "
              f"({100*ratio:.0f}%)")
        # The paper's 2%-for-half-the-size observation, with slack.
        assert ratio < 0.85
    # Every team's average point lies on or above/right of the
    # frontier (the frontier dominates individual teams).
    for r in rows:
        dominating = [
            s for s, a in frontier
            if s <= r["and_gates"] and a >= r["test_accuracy"] - 1e-9
        ]
        assert dominating or r["test_accuracy"] >= frontier[-1][1] - 1e-9
