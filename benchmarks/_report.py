"""Report collector for the experiment benches.

pytest captures stdout, so tables printed inside bench tests would be
invisible in the default ``pytest benchmarks/ --benchmark-only`` run.
Benches call :func:`echo` instead of ``print``; the collected blocks
are re-emitted by the ``pytest_terminal_summary`` hook in conftest so
every reproduced table/figure appears at the end of the run (and in
``bench_output.txt``).
"""


_LINES: list[str] = []


def echo(*parts: object) -> None:
    """Print-alike that also records the line for the summary."""
    line = " ".join(str(p) for p in parts)
    _LINES.append(line)
    print(line)


def drain() -> list[str]:
    return list(_LINES)
