"""Ablation: what each AIG optimization pass contributes.

The flows lean on ``compress`` the way the teams leaned on ABC.
Expected shapes: every pass preserves function (asserted in tests;
here we measure sizes), ``balance`` cuts depth on chain-heavy logic,
``rewrite``/``refactor`` cut nodes on redundant logic, and the
combined script at least matches the best single pass.
"""

import numpy as np

from _report import echo
from repro.aig.aig import AIG
from repro.aig.build import symmetric_function
from repro.aig.optimize import balance, compress, refactor, rewrite
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_sop import cover_to_aig
from repro.utils.rng import rng_for


def _victims():
    """Circuits with known slack: DT path covers and symmetric SOPs."""
    rng = rng_for("bench-opt")
    out = []
    X = rng.integers(0, 2, size=(800, 12)).astype(np.uint8)
    y = ((X[:, 0] & X[:, 1]) | (X[:, 2] & X[:, 3]) |
         (X[:, 4] & X[:, 5])).astype(np.uint8)
    tree = DecisionTree(max_depth=10).fit(X, y)
    out.append(("dt-cover", cover_to_aig(tree.to_cover()).extract_cone()))
    aig = AIG(9)
    aig.set_output(symmetric_function(aig, aig.input_lits(),
                                      "0101010101"))
    out.append(("symmetric", aig.extract_cone()))
    return out


def test_optimization_ablation(benchmark):
    victims = _victims()

    def run():
        rows = []
        for name, aig in victims:
            row = {"original": (aig.num_ands, aig.depth())}
            for pass_fn in (balance, rewrite, refactor, compress):
                opt = pass_fn(aig)
                row[pass_fn.__name__] = (opt.num_ands, opt.depth())
            rows.append((name, row))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    echo("\n=== Ablation: AIG optimization passes (ands, depth) ===")
    for name, row in rows:
        cells = "  ".join(
            f"{p}={a}/{d}" for p, (a, d) in row.items()
        )
        echo(f"  {name}: {cells}")
    for name, row in rows:
        orig_ands, orig_depth = row["original"]
        # compress never grows and matches the best single pass.
        best_single = min(
            row[p][0] for p in ("balance", "rewrite", "refactor")
        )
        assert row["compress"][0] <= orig_ands
        assert row["compress"][0] <= best_single + max(
            2, int(0.1 * best_single)
        )
        # balance must not worsen depth.
        assert row["balance"][1] <= orig_depth
