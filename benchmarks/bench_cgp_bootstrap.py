"""Ablation: CGP bootstrapped vs random initialization (Team 9).

The write-up's two-fold claim: bootstrapping (i) "allows to improve
further the solutions found by the other techniques", and (ii) random
initialization is the fallback when no good starter exists.  Measured
on the evolution's own objective (training fitness): the bootstrapped
run must start at/above the starter's quality and finish at least as
fit as the random-init run on the same generation budget.  The flow
itself (team09) guards test-side regressions by validating against
the starter — asserted here too.
"""

from _report import echo
from repro.cgp import CGPEvolver, CGPGenome, evolve_from_aig
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import get_flow
from repro.flows.common import aig_accuracy
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import accuracy
from repro.synth.from_tree import tree_to_aig
from repro.utils.rng import rng_for


def _run(samples, generations):
    suite = build_suite()
    problem = make_problem(suite[60], n_train=samples, n_valid=samples,
                           n_test=samples)  # 16-input mixed cone
    rng = rng_for("bench-cgp")
    # Starter: a small DT, deliberately under-fit (depth 4).
    tree = DecisionTree(max_depth=4).fit(problem.train.X,
                                         problem.train.y)
    starter = tree_to_aig(tree).extract_cone()
    starter_train = aig_accuracy(starter, problem.train)

    boot_genome, boot_fit = evolve_from_aig(
        starter, problem.train.X, problem.train.y,
        generations=generations, rng=rng_for("bench-cgp", "boot"),
    )
    seed = CGPGenome.from_aig(starter, rng=rng)
    rand = CGPEvolver(n_nodes=seed.n_nodes,
                      rng=rng_for("bench-cgp", "rand"))
    _, rand_fit = rand.run(problem.train.X, problem.train.y,
                           generations=generations)

    # The full flow (with its validation guard) on the same problem.
    solution = get_flow("team09").run(problem, effort="small")
    flow_score = evaluate_solution(problem, solution)
    starter_test = aig_accuracy(starter, problem.test)
    boot_test = accuracy(problem.test.y,
                         boot_genome.evaluate(problem.test.X))
    return (starter_train, starter_test, boot_fit, boot_test,
            rand_fit, flow_score)


def test_cgp_bootstrap_vs_random(benchmark, scale):
    samples = min(scale["samples"], 600)
    generations = 800 if scale["name"] != "full" else 10000
    (starter_train, starter_test, boot_fit, boot_test, rand_fit,
     flow_score) = benchmark.pedantic(
        lambda: _run(samples, generations), rounds=1, iterations=1
    )
    echo("\n=== Ablation: CGP initialization ===")
    echo(f"  DT starter:       train {100 * starter_train:.1f}%  "
         f"test {100 * starter_test:.1f}%")
    echo(f"  bootstrapped CGP: train {100 * boot_fit:.1f}%  "
         f"test {100 * boot_test:.1f}%")
    echo(f"  random-init CGP:  train {100 * rand_fit:.1f}%")
    echo(f"  team09 flow (validation-guarded): test "
         f"{100 * flow_score.test_accuracy:.1f}%")
    # (i) bootstrapping never loses training fitness vs the starter
    # (neutral drift accepts only >=) and beats/matches random init.
    assert boot_fit >= starter_train - 1e-9
    assert boot_fit >= rand_fit - 0.02
    # (ii) the flow's validation guard keeps test quality at or above
    # a plain under-fit starter.
    assert flow_score.test_accuracy >= starter_test - 0.05
