"""Appendix (Team 1): BDD don't-care minimization learns adders.

Claims reproduced in shape:
* with an MSB-first interleaved order, one-sided matching (restrict)
  learns the 2nd MSB of a 2-word adder to high accuracy (~98% in the
  paper);
* with a bad (LSB-first word-major) order, accuracy collapses;
* BDTs cannot learn wide XOR, BDDs can (patterns share nodes).
"""

import numpy as np

from _report import echo
from repro.bdd import BDD, minimize_dontcare, restrict
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import accuracy
from repro.utils.rng import rng_for


def _adder_dataset(k, n, rng):
    X = rng.integers(0, 2, size=(n, 2 * k)).astype(np.uint8)
    a = [sum(int(r[i]) << i for i in range(k)) for r in X]
    b = [sum(int(r[k + i]) << i for i in range(k)) for r in X]
    y = np.array(
        [((av + bv) >> (k - 1)) & 1 for av, bv in zip(a, b, strict=True)], np.uint8
    )
    return X, y


def _learn_with_order(X, y, order, n_train, method="restrict"):
    n = X.shape[1]
    Xo = X[:, order]
    bdd = BDD(n)
    onset = bdd.from_samples(Xo[:n_train][y[:n_train] == 1])
    care = bdd.from_samples(Xo[:n_train])
    if method == "restrict":
        g = restrict(bdd, onset, care)
    else:
        g = minimize_dontcare(bdd, onset, care)
    pred = bdd.evaluate(g, Xo[n_train:])
    return accuracy(y[n_train:], pred), bdd.count_nodes(g)


def test_bdd_learns_adder_with_good_order(benchmark, scale):
    k = 8
    n_train = min(scale["samples"], 1200)
    rng = rng_for("bench-bdd")
    X, y = _adder_dataset(k, n_train + 800, rng)
    msb_first = []
    for j in reversed(range(k)):
        msb_first.extend([j, k + j])
    lsb_word_major = list(range(2 * k))

    def run():
        good = _learn_with_order(X, y, msb_first, n_train)
        bad = _learn_with_order(X, y, lsb_word_major, n_train)
        two_sided = _learn_with_order(X, y, msb_first, n_train,
                                      method="two_sided")
        return good, bad, two_sided

    (good_acc, good_nodes), (bad_acc, bad_nodes), (ts_acc, ts_nodes) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    echo("\n=== Appendix: BDD don't-care minimization on adder ===")
    echo(f"  MSB-first order, restrict:        acc {100 * good_acc:.1f}% "
          f"({good_nodes} nodes)")
    echo(f"  MSB-first order, naive two-sided: acc {100 * ts_acc:.1f}% "
          f"({ts_nodes} nodes)")
    echo(f"  LSB word-major order:             acc {100 * bad_acc:.1f}% "
          f"({bad_nodes} nodes)")
    assert good_acc > 0.85          # paper: ~98% at 6400 samples
    assert good_acc > bad_acc + 0.1  # ordering is decisive
    # The paper's negative result, reproduced: "naive two-sided
    # matching fails (gets 50% accuracy)" on adders — merging
    # compatible-looking siblings destroys the carry structure.
    assert ts_acc < good_acc - 0.2


def test_bdd_learns_wide_xor_bdt_cannot(benchmark, scale):
    """Appendix: 'BDD can learn a large XOR ... BDT cannot'."""
    n = 12
    n_train = min(scale["samples"], 1500)
    rng = rng_for("bench-bdd-xor")
    X = rng.integers(0, 2, size=(n_train + 600, n)).astype(np.uint8)
    y = (X.sum(axis=1) % 2).astype(np.uint8)

    def run():
        bdd = BDD(n)
        onset = bdd.from_samples(X[:n_train][y[:n_train] == 1])
        care = bdd.from_samples(X[:n_train])
        # XOR cofactors are complements: the *complemented* two-sided
        # matching is the one that recovers the structure.
        g = minimize_dontcare(bdd, onset, care, complemented=True)
        bdd_acc = accuracy(y[n_train:], bdd.evaluate(g, X[n_train:]))
        nodes = bdd.count_nodes(g)
        tree = DecisionTree(max_depth=8).fit(X[:n_train], y[:n_train])
        dt_acc = accuracy(y[n_train:], tree.predict(X[n_train:]))
        return bdd_acc, nodes, dt_acc

    bdd_acc, nodes, dt_acc = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    echo(f"\n  12-XOR: BDD {100 * bdd_acc:.1f}% ({nodes} nodes) vs "
          f"BDT {100 * dt_acc:.1f}%")
    assert dt_acc < 0.65, "depth-limited DT must fail wide XOR"
    assert bdd_acc > 0.9, "complemented matching recovers XOR"
    assert nodes <= 4 * n, "the recovered BDD is compact (linear)"
