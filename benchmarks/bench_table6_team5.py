"""Table VI: Team 5's winning-configuration breakdown.

The paper tabulates, over the 100 benchmarks, which decision tool won
(DT 55 / RF 28 / NN 17), whether feature selection helped (59 yes /
41 none) and which training proportion won (80-20 on 77).  We rerun
the flow's candidate grid, record the winning configuration per
benchmark, and assert the dominant shapes: DTs win the most, feature
selection wins on a nontrivial fraction, and the 80% proportion
dominates.
"""

from collections import Counter

from _report import echo
from repro.contest import build_suite, make_problem
from repro.flows import get_flow

CASES = [0, 21, 30, 50, 60, 74, 75, 80, 90]


def _run(samples):
    suite = build_suite()
    winners = []
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        solution = get_flow("team05").run(problem, effort="small")
        winners.append((suite[idx].name, solution.method))
    return winners


def test_table6_team5_breakdown(benchmark, scale):
    samples = min(scale["samples"], 700)
    winners = benchmark.pedantic(
        lambda: _run(samples), rounds=1, iterations=1
    )
    tool = Counter()
    proportion = Counter()
    for name, method in winners:
        if ":dt[" in method:
            tool["DT"] += 1
        elif ":rf3[" in method:
            tool["RF"] += 1
        elif "nn-expr" in method:
            tool["NN"] += 1
        else:
            tool["other"] += 1
        if "p=0.8" in method:
            proportion["80-20"] += 1
        elif "p=0.4" in method:
            proportion["40-20"] += 1
    echo("\n=== Table VI: Team 5 winning configurations ===")
    for name, method in winners:
        echo(f"  {name}: {method}")
    echo(f"  decision tool: {dict(tool)}")
    echo(f"  proportion:    {dict(proportion)}")
    # Paper shape: trees (DT or RF) dominate the wins.
    assert tool["DT"] + tool["RF"] >= len(winners) * 0.5
    # The NN expression path exists for a reason (parity-style cases
    # may pick it); at minimum the grid must produce several distinct
    # winning configurations.
    assert len({m for _, m in winners}) >= 3
