"""Tables I and II: the benchmark taxonomy and group comparisons.

Prints the suite inventory and verifies the structural claims of
Table I (10 categories x 10 cases, input ranges) and Table II (the
MNIST/CIFAR group pairs).
"""

from collections import Counter

from _report import echo
from repro.contest import build_suite, make_problem
from repro.contest.imagelike import GROUP_COMPARISONS


def _taxonomy():
    suite = build_suite()
    by_category = Counter(s.category for s in suite)
    return suite, by_category


def test_table1_taxonomy(benchmark):
    suite, by_category = benchmark.pedantic(
        _taxonomy, rounds=1, iterations=1
    )
    echo("\n=== Table I: benchmark taxonomy ===")
    ranges = {}
    for s in suite:
        lo, hi = ranges.get(s.category, (10**9, 0))
        ranges[s.category] = (min(lo, s.n_inputs), max(hi, s.n_inputs))
    for category, count in sorted(by_category.items()):
        lo, hi = ranges[category]
        echo(f"  {category:14s} x{count:3d}   inputs {lo}-{hi}")
    # Table I structure: 100 cases; arithmetic categories have 10 each.
    assert sum(by_category.values()) == 100
    for cat in ("adder", "divider", "multiplier", "comparator", "sqrt",
                "mnist-like", "cifar-like"):
        assert by_category[cat] == 10, cat
    # "PicoJava/i10 ... with 16-200 inputs".
    for cat in ("picojava-like", "i10-like"):
        lo, hi = ranges[cat]
        assert 16 <= lo and hi <= 200


def test_table2_group_comparisons(benchmark):
    groups = benchmark.pedantic(
        lambda: GROUP_COMPARISONS, rounds=1, iterations=1
    )
    echo("\n=== Table II: group comparisons (A -> 0, B -> 1) ===")
    for i, (a, b) in enumerate(groups):
        echo(f"  row {i}: A={a} B={b}")
    # The exact pairs from the paper's Table II.
    assert groups[0] == ((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))
    assert groups[1] == ((1, 3, 5, 7, 9), (0, 2, 4, 6, 8))
    assert groups[2] == ((0, 1, 2), (3, 4, 5))
    assert groups[3] == ((0, 1), (2, 3))
    assert groups[9] == ((0, 3), (8, 9))
    assert len(groups) == 10


def test_sampling_protocol(benchmark):
    """The contest protocol: three same-sized disjoint PLA sets."""
    suite = build_suite()

    def sample():
        return make_problem(suite[30], n_train=200, n_valid=200,
                            n_test=200)

    problem = benchmark.pedantic(sample, rounds=1, iterations=1)
    assert problem.train.n_samples == 200
    assert problem.valid.n_samples == 200
    assert problem.test.n_samples == 200
    train_rows = {tuple(r) for r in problem.train.X}
    assert not any(tuple(r) in train_rows for r in problem.test.X)
