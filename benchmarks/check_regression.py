#!/usr/bin/env python
"""Gate bench timings against a committed baseline.

Used by the nightly workflow::

    python -m pytest benchmarks/ -q --benchmark-json=bench_results.json
    python benchmarks/check_regression.py \
        --results bench_results.json \
        --baseline benchmarks/BENCH_baseline.json --tolerance 0.20

Raw wall-clock comparisons across machines are meaningless (a cold CI
runner is not the laptop that recorded the baseline), so the check is
*speed-normalized*: each benchmark's current/baseline ratio is divided
by the median ratio across all shared benchmarks.  A uniformly slower
machine moves every ratio equally and cancels out; a genuine
regression moves one benchmark against the pack and fails the gate
when it exceeds ``1 + tolerance``.

``--update`` rewrites the baseline from a results file (run it on a
quiet machine when a deliberate perf change shifts the floor).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def load_means(results_path: Path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from pytest-benchmark JSON."""
    data = json.loads(results_path.read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        means[bench["fullname"]] = float(bench["stats"]["mean"])
    return means


def write_baseline(baseline_path: Path, means: dict[str, float]) -> None:
    payload = {
        "comment": (
            "Mean seconds per pytest-benchmark fixture benchmark. "
            "Regenerate with benchmarks/check_regression.py --update "
            "after deliberate perf changes."
        ),
        "benchmarks": {name: means[name] for name in sorted(means)},
    }
    baseline_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def check(
    results: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
) -> int:
    shared = sorted(set(results) & set(baseline))
    new = sorted(set(results) - set(baseline))
    gone = sorted(set(baseline) - set(results))
    if not shared:
        print("error: no benchmarks shared with the baseline — wrong "
              "results file, or the baseline needs --update")
        return 2
    ratios = {name: results[name] / baseline[name] for name in shared}
    machine = statistics.median(ratios.values())
    print(f"{len(shared)} shared benchmark(s); machine-speed factor "
          f"{machine:.2f}x (median current/baseline ratio)")
    failures = []
    for name in shared:
        normalized = ratios[name] / machine
        flag = ""
        if normalized > 1.0 + tolerance:
            failures.append(name)
            flag = f"  << regression (> {1 + tolerance:.2f}x)"
        print(f"  {normalized:6.2f}x  {name}{flag}")
    for name in new:
        print(f"    new   {name} ({results[name] * 1e3:.1f} ms, "
              f"not in baseline — add via --update)")
    for name in gone:
        print(f"    gone  {name} (in baseline, absent from results)")
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{tolerance:.0%} after machine-speed normalization")
        return 1
    if gone:
        # A baselined bench that vanished is a silently dropped perf
        # floor (rename, collection failure) — fail loudly; a
        # deliberate removal goes through --update.
        print(f"\nFAIL: {len(gone)} baselined benchmark(s) missing from "
              f"the results — renamed/removed?  Refresh with --update")
        return 1
    print(f"\nOK: no normalized regression beyond {tolerance:.0%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=Path, required=True,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "BENCH_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed normalized slowdown (0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --results")
    args = parser.parse_args(argv)
    results = load_means(args.results)
    if not results:
        print(f"error: {args.results} holds no benchmark entries")
        return 2
    if args.update:
        write_baseline(args.baseline, results)
        print(f"wrote {len(results)} baseline entries to {args.baseline}")
        return 0
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(results, baseline["benchmarks"], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
