"""Table V: Team 3's NN accuracy degradation through the pipeline.

Paper values: initial 82.87% -> after pruning 81.88% -> after
LUT-synthesis 80.90% test accuracy (a non-negligible ~2% total drop).
We measure the same three checkpoints — float MLP, pruned float MLP,
synthesized AIG — and assert the shape: each stage loses a little, the
total loss stays bounded, and the final AIG still clearly learns.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, make_problem
from repro.flows.common import aig_accuracy
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLP
from repro.synth.from_mlp import mlp_to_aig
from repro.utils.rng import rng_for

CASES = [30, 50, 60]


def _pipeline(samples):
    suite = build_suite()
    stages = {"initial": [], "pruned": [], "synthesized": []}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        rng = rng_for("bench-table5", idx)
        mlp = MLP(hidden_sizes=(32, 16), activation="sigmoid", rng=rng)
        Xf = problem.train.X.astype(float)
        mlp.fit(Xf, problem.train.y, epochs=30)
        test_f = problem.test.X.astype(float)
        stages["initial"].append(
            accuracy(problem.test.y, mlp.predict(test_f))
        )
        mlp.prune_to_fanin(8, Xf, problem.train.y, rounds=3,
                           retrain_epochs=10)
        stages["pruned"].append(
            accuracy(problem.test.y, mlp.predict(test_f))
        )
        aig = mlp_to_aig(mlp).extract_cone()
        stages["synthesized"].append(aig_accuracy(aig, problem.test))
    return stages


def test_table5_nn_degradation(benchmark, scale):
    samples = min(scale["samples"], 800)
    stages = benchmark.pedantic(
        lambda: _pipeline(samples), rounds=1, iterations=1
    )
    means = {k: float(np.mean(v)) for k, v in stages.items()}
    echo("\n=== Table V: NN accuracy through the pipeline ===")
    for stage, acc in means.items():
        echo(f"  {stage:12s} {100 * acc:6.2f}%")
    # Bounded total degradation (paper: ~2%; allow more at small scale).
    assert means["initial"] - means["synthesized"] < 0.12
    # The synthesized network still clearly learns.
    assert means["synthesized"] > 0.6
