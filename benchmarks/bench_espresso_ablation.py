"""Ablation: espresso heuristic vs exact Quine-McCluskey.

Design question from DESIGN.md: how far is the heuristic from optimal,
and what does the full reduce/expand loop buy over Team 1's
first-irredundant stop?  Expected shape: the heuristic stays within a
small factor of the exact cover on enumerable instances, and the full
loop never produces more cubes than first-irredundant.
"""

import random
import time

import numpy as np

from _report import echo
from repro.twolevel.espresso import espresso
from repro.twolevel.quine import quine_mccluskey


def _instances(n_instances=25, seed=0):
    rnd = random.Random(seed)
    out = []
    for _ in range(n_instances):
        n = rnd.randint(4, 7)
        universe = list(range(1 << n))
        rnd.shuffle(universe)
        n_on = rnd.randint(4, 1 << (n - 1))
        n_off = rnd.randint(4, 1 << (n - 1))
        out.append((n, universe[:n_on],
                    universe[n_on:n_on + n_off],
                    universe[n_on + n_off:]))
    return out


def test_espresso_vs_exact(benchmark):
    instances = _instances()

    def run():
        rows = []
        for n, onset, offset, dcset in instances:
            t0 = time.time()
            heur = espresso(onset, offset, n)
            t_heur = time.time() - t0
            t0 = time.time()
            first = espresso(onset, offset, n, first_irredundant=True)
            t_first = time.time() - t0
            t0 = time.time()
            exact = quine_mccluskey(onset, dcset, n)
            t_exact = time.time() - t0
            rows.append((n, len(heur), len(first), len(exact),
                         t_heur, t_first, t_exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    echo("\n=== Ablation: espresso vs exact QM ===")
    echo(f"  {'n':>2} {'full':>5} {'first':>6} {'exact':>6}"
          f" {'t_full':>8} {'t_exact':>8}")
    ratios = []
    for n, full, first, exact, t_h, t_f, t_e in rows:
        echo(f"  {n:2d} {full:5d} {first:6d} {exact:6d}"
              f" {t_h:8.4f} {t_e:8.4f}")
        ratios.append(full / max(1, exact))
        assert full <= first, "reduce/expand must not grow the cover"
    mean_ratio = float(np.mean(ratios))
    echo(f"  mean cubes ratio heuristic/exact: {mean_ratio:.2f}")
    assert mean_ratio < 1.6, "heuristic within 60% of optimal on average"
