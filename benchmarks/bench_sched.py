"""Learned pass scheduling vs the fixed ``compress`` recipe.

Two gates:

1. **Quality.**  On a held-out registry slice (odd indices ex61-ex99 —
   disjoint from the even-index ex00-ex58 slice the packaged policy
   was harvested/trained on) the learned schedulers must produce
   circuits **no larger than the fixed-compress twin at equal
   accuracy**.  The twin shares the learned flows' candidate stage
   through one ArtifactCache, so every compared candidate starts from
   the *same* tree circuit; all palette passes are exact rebuilds, so
   accuracies are provably equal and only sizes differ.  The greedy
   scheduler must win per candidate (never larger anywhere) and
   strictly in total; the exploring bandit must win in total.

2. **Harvest determinism.**  Tuples harvested from a run store are a
   pure function of the store's contents: a grid executed at jobs=1
   and jobs=2 must harvest to byte-identical JSONL.
"""

from _report import echo
from repro.analysis import run_contest
from repro.contest import DEFAULT_REGISTRY
from repro.flows import REGISTRY
from repro.flows.api import ArtifactCache
from repro.flows.common import aig_accuracy
from repro.sched import harvest_store, tuples_to_jsonl
from repro.sched.flow import fixed_twin

#: Held out from policy training (which harvested even indices
#: ex00-ex58): the odd-indexed tail of the registry.
HELD_OUT = [f"ex{i:02d}" for i in range(61, 100, 2)]
SAMPLES = 250
#: ``compress`` spends up to 3 rounds x 4 passes; give the learned
#: loop a comparable pass budget (the ``full``-effort default), not
#: the ``small`` grid's 8 — at 8 it cannot even match compress's
#: work on the hardest candidates.
BUDGET = 20


def _sizes(result):
    return {c.name: c.num_ands for c in result.candidates}


def test_learned_scheduler_beats_fixed_compress(benchmark):
    twin = fixed_twin()
    greedy = REGISTRY.get("learned-greedy")
    bandit = REGISTRY.get("learned")

    totals = {"twin": 0, "greedy": 0, "bandit": 0}
    greedy_regressions = []
    problems = {}
    for name in HELD_OUT:
        problem = DEFAULT_REGISTRY.problem(
            name, n_train=SAMPLES, n_valid=SAMPLES, n_test=SAMPLES
        )
        problems[name] = problem
        cache = ArtifactCache()  # twin + learned share the tree stage
        tw = twin.run_detailed(problem, cache=cache)
        gr = greedy.run_sched(problem, cache=cache, budget=BUDGET)
        bd = bandit.run_sched(problem, cache=cache, budget=BUDGET)

        tw_sizes, gr_sizes, bd_sizes = _sizes(tw), _sizes(gr), _sizes(bd)
        assert set(tw_sizes) == set(gr_sizes) == set(bd_sizes)
        for cand, tw_size in tw_sizes.items():
            totals["twin"] += tw_size
            totals["greedy"] += gr_sizes[cand]
            totals["bandit"] += bd_sizes[cand]
            if gr_sizes[cand] > tw_size:
                greedy_regressions.append((name, cand))

        # Equal accuracy by construction (identical candidates, exact
        # passes) — verified, not just argued:
        tw_acc = aig_accuracy(tw.solution.aig, problem.valid)
        gr_acc = aig_accuracy(gr.solution.aig, problem.valid)
        assert gr_acc >= tw_acc, (name, gr_acc, tw_acc)

    echo(f"\n=== Learned scheduling vs fixed compress "
         f"({len(HELD_OUT)} held-out benchmarks, {SAMPLES} samples, "
         f"budget={BUDGET}) ===")
    for who in ("twin", "greedy", "bandit"):
        ratio = totals[who] / max(totals["twin"], 1)
        echo(f"  {who:8s} total ANDs: {totals[who]:6d}  ({ratio:.4f}x)")

    assert not greedy_regressions, (
        f"greedy scheduler produced larger circuits than compress on "
        f"{greedy_regressions}"
    )
    assert totals["greedy"] < totals["twin"], totals
    assert totals["bandit"] <= totals["twin"], totals

    # Timing floor: one held-out problem through the greedy flow.
    probe = problems[HELD_OUT[0]]
    benchmark.pedantic(
        lambda: greedy.run(probe, effort="small", budget=BUDGET),
        rounds=3, iterations=1,
    )


def test_harvest_byte_deterministic_across_jobs(benchmark, tmp_path):
    grid = dict(
        benchmarks=["ex61", "ex65"],
        flows=["team10", "learned-greedy"],
        n_train=64, n_valid=64, n_test=64,
        keep_solutions=True,
    )
    run_contest(jobs=1, out_dir=str(tmp_path / "j1"), **grid)
    run_contest(jobs=2, out_dir=str(tmp_path / "j2"), **grid)

    serial = tuples_to_jsonl(harvest_store(tmp_path / "j1", horizon=2))
    parallel = tuples_to_jsonl(harvest_store(tmp_path / "j2", horizon=2))
    assert serial == parallel
    assert serial  # the grid actually produced circuits to learn from

    n_tuples = serial.count("\n")
    echo(f"\n=== Harvest determinism: {n_tuples} tuples, "
         f"jobs=1 == jobs=2 byte-for-byte ===")

    benchmark.pedantic(
        lambda: tuples_to_jsonl(harvest_store(tmp_path / "j1", horizon=2)),
        rounds=3, iterations=1,
    )
