"""Figs. 32 and 33: Team 10's per-benchmark accuracy and tiny sizes.

Paper claims: "average accuracy over the validation set of 84%, with
an average size of AIG of 140 nodes (and no AIG with more than 300
nodes)"; many cases above 90% with fewer than 50 nodes.  We run the
flow across the scaled suite and assert the size discipline (all
circuits small) and the accuracy profile (solid average, some
near-perfect cases).
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import get_flow


def _run(indices, samples):
    suite = build_suite()
    scores = []
    for idx in indices:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        solution = get_flow("team10").run(problem, effort="small")
        scores.append(evaluate_solution(problem, solution))
    return scores


def test_fig32_fig33_team10(benchmark, scale):
    samples = min(scale["samples"], 1000)
    scores = benchmark.pedantic(
        lambda: _run(scale["indices"], samples), rounds=1, iterations=1
    )
    echo("\n=== Figs. 32/33: Team 10 accuracy and AIG size ===")
    for s in scores:
        echo(f"  {s.benchmark}: acc {100 * s.test_accuracy:6.2f}%  "
              f"size {s.num_ands:4d}")
    accs = [s.test_accuracy for s in scores]
    sizes = [s.num_ands for s in scores]
    echo(f"  mean acc {100 * np.mean(accs):.2f}%  "
          f"mean size {np.mean(sizes):.1f}  max size {max(sizes)}")
    # Size discipline: depth-8 trees stay tiny (paper: max 300 at 6400
    # samples; the bound scales with leaves = min(2^8, samples)).
    assert max(sizes) <= 2000
    assert np.mean(sizes) < 400
    # Accuracy profile: decent average, some strong cases.
    assert np.mean(accs) > 0.65
    assert max(accs) > 0.9
