"""Fig. 7 + section IV claim: Team 1's AIG approximation.

The paper applies simulation-guided constant substitution to oversize
LUT-network AIGs on the image benchmarks and reports "the accuracy
drops at most 5% while reducing 3000-5000 nodes".  We train a
memorization LUT network on the CIFAR-like benchmark (the paper's
cases 80-99), convert it to an AIG of several thousand nodes, and
strip nodes in steps, simulating with the training distribution
(Team 1 used random patterns at 6400 samples; at reduced scale the
data distribution is the honest stimulus).  Asserted shape: removing
the first 2000 nodes costs only a few points; deeper cuts degrade
gracefully toward the constant predictor, never below chance.
"""

from _report import echo
from repro.aig.approx import approximate_to_size
from repro.contest import build_suite, make_problem
from repro.flows.common import aig_accuracy
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_lutnet import lutnet_to_aig
from repro.utils.rng import rng_for


def _approx_sweep(samples):
    suite = build_suite()
    problem = make_problem(suite[90], n_train=samples, n_valid=500,
                           n_test=samples)
    rng = rng_for("bench-approx")
    net = LUTNetwork(n_layers=6, luts_per_layer=512, lut_size=4,
                     rng=rng)
    net.fit(problem.train.X, problem.train.y)
    aig = lutnet_to_aig(net).extract_cone()
    sweep = [(aig.num_ands, aig_accuracy(aig, problem.test))]
    for removed in (2000, 4000):
        target = aig.num_ands - removed
        if target <= 0:
            break
        small = approximate_to_size(
            aig, max_ands=target, rng=rng, patterns=problem.train.X
        )
        sweep.append((small.num_ands, aig_accuracy(small, problem.test)))
    return sweep


def test_fig7_approximation_degradation(benchmark, scale):
    samples = max(min(scale["samples"] * 4, 2000), 1000)
    sweep = benchmark.pedantic(
        lambda: _approx_sweep(samples), rounds=1, iterations=1
    )
    echo("\n=== Fig. 7: LUT-net accuracy vs approximated size ===")
    base_size, base_acc = sweep[0]
    for ands, acc in sweep:
        echo(f"  {ands:6d} ANDs (-{base_size - ands:5d})  ->  "
             f"{100 * acc:6.2f}%")
    assert base_acc > 0.8, "LUT net should learn the image task"
    # The paper's claim: the first thousands of removed nodes are
    # nearly free (<= 5% there; allow 8 points at reduced scale).
    assert len(sweep) >= 2
    assert base_acc - sweep[1][1] <= 0.08, (base_acc, sweep[1][1])
    # Deeper cuts degrade but never below chance.
    assert all(acc > 0.45 for _, acc in sweep)
