"""Streamed registry materialization: flat memory, shardable sweeps.

The registry's pitch over the old eager suite tuple is that problem
grids *stream*: describing a big spec grid builds nothing, heavy
generator state lives in one bounded LRU, and a large sweep can be
split across shards whose merged store is byte-identical to an
unsharded run.  This bench pins all three at a scale the unit tests
don't reach (hundreds of specs, 150+ problem contest sweep).
"""

import json
import resource

from _report import echo
from repro.contest import DEFAULT_REGISTRY, clear_cache
from repro.runner import (
    contest_tasks,
    merge_stores,
    run_contest_tasks,
    shard_tasks,
)

#: Peak-RSS growth allowed over the materialization sweep.  Generous —
#: CI allocators differ — but far below what re-pinning every sampled
#: dataset or generator would cost (the failure mode this guards).
RSS_MARGIN_KB = 192 * 1024

SAMPLES = 24
SHARDS = 4


def _spec_grid():
    """A few hundred spec strings across deterministic families."""
    names = []
    names += [f"comparator:width={w}" for w in range(2, 102)]
    names += [f"adder:width={w}" for w in range(2, 102)]
    names += [f"parity:inputs={n}" for n in range(2, 102)]
    names += [f"multiplier:width={w}" for w in range(2, 102)]
    names += [f"cone:inputs=16,seed={s}" for s in range(20)]
    return names


def _sweep_problems():
    """150+ problems for the sharded sweep: cheap paper benchmarks
    plus generated-family specs (swept widths, cones, perturbed and
    composed functions)."""
    problems = [30, 74, 75]  # historical indices stay addressable
    problems += [f"comparator:width={w}" for w in range(2, 62)]
    problems += [f"parity:inputs={n}" for n in range(2, 62)]
    problems += [f"adder:width={w}" for w in range(2, 22)]
    problems += [f"cone:inputs=16,seed={s}" for s in range(8)]
    problems += [f"perturbed:base=ex74,seed={s}" for s in range(4)]
    problems += ["composed:a=ex74,b=t481", "composed:a=parity,b=t481"]
    assert len(problems) >= 150
    return problems


def _lines(root):
    out = {}
    for line in (root / "records.jsonl").read_text().splitlines():
        if line.strip():
            out[json.loads(line)["key"]] = line
    return out


def test_spec_grid_describes_without_building(benchmark):
    """Naming/validating hundreds of specs must materialize nothing."""
    clear_cache()

    def describe():
        return [DEFAULT_REGISTRY.get(name) for name in _spec_grid()]

    specs = benchmark.pedantic(describe, rounds=1, iterations=1)
    echo(f"\n=== described {len(specs)} specs ===")
    stats = DEFAULT_REGISTRY.cache.stats()
    echo(f"  cache builds: {stats['builds']}  entries: {stats['entries']}")
    assert len(specs) == 420
    assert len({s.name for s in specs}) == len(specs)
    assert stats["builds"] == 0 and stats["entries"] == 0


def test_materialization_sweep_memory_flat(benchmark):
    """Materializing 400+ generators stays inside the bounded cache
    and leaves peak RSS flat (the eager suite pinned everything)."""
    clear_cache()
    names = _spec_grid()
    before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def sweep():
        import numpy as np

        probe_hits = 0
        for name in names:
            spec = DEFAULT_REGISTRY.get(name)
            mat = DEFAULT_REGISTRY.materialize(spec)
            rng = np.random.default_rng(0)
            X = rng.integers(0, 2, size=(32, spec.n_inputs)).astype(
                np.uint8)
            probe_hits += int(mat.label_fn(X).sum())
        return probe_hits

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    stats = DEFAULT_REGISTRY.cache.stats()
    growth_kb = after_kb - before_kb
    echo(f"\n=== materialized {len(names)} generators ===")
    echo(f"  cache: {stats['entries']}/{DEFAULT_REGISTRY.cache.maxsize} "
         f"entries, {stats['builds']} builds, "
         f"{stats['evictions']} evictions")
    echo(f"  peak RSS growth: {growth_kb / 1024:.1f} MB "
         f"(margin {RSS_MARGIN_KB / 1024:.0f} MB)")
    # Functional bound: the cache never outgrows its size, and the
    # sweep is big enough that eviction actually happened.
    assert stats["builds"] >= len(names)
    assert stats["entries"] <= DEFAULT_REGISTRY.cache.maxsize
    assert stats["evictions"] > 0
    assert growth_kb < RSS_MARGIN_KB
    clear_cache()


def test_sharded_sweep_merges_byte_identical(benchmark, tmp_path):
    """A 150+ problem contest splits into 4 shards whose merged store
    is byte-identical to the unsharded run's."""
    specs = contest_tasks(
        _sweep_problems(), ["team10"], SAMPLES, SAMPLES, SAMPLES,
    )

    def sharded():
        dirs = []
        for k in range(SHARDS):
            part = shard_tasks(specs, k, SHARDS)
            run_contest_tasks(part, jobs=1,
                              out_dir=tmp_path / f"shard{k}")
            dirs.append(tmp_path / f"shard{k}")
        return dirs

    shard_dirs = benchmark.pedantic(sharded, rounds=1, iterations=1)
    run_contest_tasks(specs, jobs=4, out_dir=tmp_path / "unsharded")
    merge_stores(shard_dirs, tmp_path / "merged")
    merged = _lines(tmp_path / "merged")
    unsharded = _lines(tmp_path / "unsharded")
    sizes = [len(_lines(d)) for d in shard_dirs]
    echo(f"\n=== sharded sweep: {len(specs)} tasks over "
         f"{SHARDS} shards {sizes} ===")
    assert sum(sizes) == len(specs)
    assert min(sizes) > 0  # the hash spread every shard some work
    assert set(merged) == {s.key for s in specs}
    assert merged == unsharded
