"""Flow API: artifact-cache sharing + registry dispatch overhead.

Two claims are pinned here:

1. **The artifact cache makes multi-flow portfolios cheaper.**  A
   two-flow portfolio whose members consume the same deterministic
   artifact family computes it once: the work-count claim (one miss,
   one hit, byte-identical Solutions) is asserted unconditionally; the
   wall-clock claim (shared-cache portfolio faster than the sum of
   cold runs) is asserted when the box has cores to time reliably
   (same gating policy as ``bench_runner``).

   The timed pair are two bench-local flows sharing a *heavy* espresso
   cover, because the real teams' expensive models (forests, LUT nets,
   MLPs) draw from per-flow sequential RNG streams — their artifacts
   are bit-different across flows *by design*, and caching them would
   change flow outputs, which the golden equivalence tests forbid.
   What the real flows do share deterministically — the merged
   train+valid dataset and Team 1/7's standard-function match scan —
   is asserted on the real ``team01``/``team07`` pair.

2. **Registry dispatch adds no measurable overhead** over calling the
   flow function directly: resolving a name or spec string costs
   microseconds against flow runtimes of milliseconds to minutes.
"""

import os
import time

from _report import echo
from repro.aig.aiger import dumps_aag
from repro.contest import build_suite, make_problem
from repro.flows import REGISTRY, get_flow
from repro.flows.api import ArtifactCache, Candidate, Flow, Stage
from repro.synth.from_sop import cover_to_aig
from repro.twolevel.espresso import espresso_from_samples

SAMPLES = 1500
HEAVY_BENCHMARK = 90  # wide image-like cone: espresso is the hot spot


def _shared_cover_stage(ctx):
    """The shared family: a deterministic espresso cover of the full
    training set (the same mechanics as team01's espresso stage)."""
    cover = ctx.artifact(
        "espresso-cover", ("train", True),
        lambda: espresso_from_samples(
            ctx.problem.train.X, ctx.problem.train.y,
            first_irredundant=True,
        ),
    )
    return [Candidate("espresso", cover_to_aig(cover))]


def _bench_flow(name: str) -> Flow:
    return Flow(
        name,
        team="bench",
        efforts={"small": {}, "full": {}},
        stages=(Stage("cover", _shared_cover_stage),),
    )


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def test_artifact_cache_two_flow_portfolio():
    problem = make_problem(
        build_suite()[HEAVY_BENCHMARK],
        n_train=SAMPLES, n_valid=SAMPLES, n_test=SAMPLES,
    )
    flow_a = REGISTRY.register(_bench_flow("bench-cover-a"))
    flow_b = REGISTRY.register(_bench_flow("bench-cover-b"))
    try:
        cold_a_s, cold_a = _timed(lambda: flow_a.run(problem))
        cold_b_s, cold_b = _timed(lambda: flow_b.run(problem))
        cold_sum = cold_a_s + cold_b_s

        cache = ArtifactCache()
        warm_s, warm = _timed(lambda: get_flow("portfolio").run(
            problem, flows=["bench-cover-a", "bench-cover-b"],
            cache=cache,
        ))
    finally:
        REGISTRY.remove("bench-cover-a")
        REGISTRY.remove("bench-cover-b")

    cores = os.cpu_count() or 1
    echo(f"\n=== Artifact cache: two-flow portfolio "
         f"(ex{HEAVY_BENCHMARK}, {SAMPLES} samples, {cores} cores) ===")
    echo(f"  cold member runs:        {cold_a_s:6.2f} s + "
         f"{cold_b_s:6.2f} s = {cold_sum:6.2f} s")
    echo(f"  shared-cache portfolio:  {warm_s:6.2f} s  "
         f"({cold_sum / warm_s:.2f}x)")
    echo(f"  cache stats: {cache.stats()}")

    # Work-count claim: the shared family was computed exactly once.
    assert cache.stats()["espresso-cover"] == {"hits": 1, "misses": 1}
    # Sharing must not change behaviour: the portfolio's winner is one
    # of the cold members' circuits, byte for byte.
    assert dumps_aag(warm.aig.extract_cone()) in {
        dumps_aag(cold_a.aig.extract_cone()),
        dumps_aag(cold_b.aig.extract_cone()),
    }
    if cores >= 4:
        assert warm_s < cold_sum, (
            f"shared-cache portfolio ({warm_s:.2f}s) not faster than "
            f"the sum of cold runs ({cold_sum:.2f}s)"
        )
    else:
        echo(f"  [{cores}-core box: wall-clock assert skipped; the "
             f"work-count and byte-identity asserts above still hold]")


def test_real_flows_share_the_match_scan():
    """team01 + team07 share the merged dataset and the standard-
    function match scan through a portfolio's cache — with
    byte-identical Solutions to their cold runs."""
    problem = make_problem(
        build_suite()[74], n_train=1000, n_valid=1000, n_test=1000
    )
    cold01_s, cold01 = _timed(lambda: get_flow("team01").run(problem))
    cold07_s, cold07 = _timed(lambda: get_flow("team07").run(problem))
    cache = ArtifactCache()
    warm_s, warm = _timed(lambda: get_flow("portfolio").run(
        problem, flows=["team01", "team07"], cache=cache
    ))
    echo(f"\n=== Real flows sharing (ex74 parity, team01+team07) ===")
    echo(f"  cold: {cold01_s + cold07_s:.3f} s   shared-cache "
         f"portfolio: {warm_s:.3f} s")
    echo(f"  cache stats: {cache.stats()}")
    assert cache.stats()["function-match"] == {"hits": 1, "misses": 1}
    assert cache.stats()["merged-dataset"] == {"hits": 1, "misses": 1}
    assert warm.metadata["selected_flow"] in ("team01", "team07")
    chosen = cold01 if warm.metadata["selected_flow"] == "team01" else cold07
    assert dumps_aag(warm.aig.extract_cone()) == \
        dumps_aag(chosen.aig.extract_cone())


def test_registry_dispatch_overhead():
    """Resolving through the registry must be noise next to any real
    flow: micro-seconds per dispatch, <1% of even the cheapest flow."""
    from repro.runner import resolve_flow

    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        resolve_flow("team10")
    plain_us = (time.perf_counter() - start) / n * 1e6
    start = time.perf_counter()
    for _ in range(n):
        resolve_flow("team10:effort=full")
    spec_us = (time.perf_counter() - start) / n * 1e6

    problem = make_problem(build_suite()[74], n_train=64, n_valid=64,
                           n_test=64)
    direct_s, direct = _timed(lambda: get_flow("team10").run(problem))
    resolved_s, resolved = _timed(
        lambda: resolve_flow("team10")(problem)
    )

    echo(f"\n=== Registry dispatch overhead ===")
    echo(f"  resolve plain name:  {plain_us:7.1f} us")
    echo(f"  resolve spec string: {spec_us:7.1f} us")
    echo(f"  team10 (64 samples): direct {direct_s * 1e3:.1f} ms, "
         f"via registry {resolved_s * 1e3:.1f} ms")

    assert direct.method == resolved.method
    # Generous absolute bounds: dispatch stays 1000x under flow cost.
    assert plain_us < 500, f"plain resolution {plain_us:.1f}us"
    assert spec_us < 1000, f"spec resolution {spec_us:.1f}us"
    assert plain_us * 1e-6 < 0.01 * direct_s, (
        "registry dispatch is not negligible next to the cheapest flow"
    )
