"""Table IV + Figs. 16/17: Team 3's method comparison.

DT vs fringe-DT vs pruned NN vs LUT-Net vs the 3-model ensemble.
Paper values (full scale): DT 80.15% / 304 nodes, Fr-DT 85.23% / 241
nodes, NN 80.90% / 10981 nodes, LUT-Net 72.68% / 64004 nodes, ensemble
87.25%.  Shapes asserted here: Fr-DT >= DT in accuracy without a size
blow-up; LUT-Net trails the learned methods; the NN's raw synthesis is
much larger than the trees; the ensemble is at least competitive with
its best member.
"""

import numpy as np

from _report import echo
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import get_flow
from repro.flows.common import aig_accuracy
from repro.ml.decision_tree import DecisionTree
from repro.ml.fringe import FringeDT
from repro.ml.lutnet import LUTNetwork
from repro.ml.mlp import MLP
from repro.synth.from_lutnet import lutnet_to_aig
from repro.synth.from_mlp import mlp_to_aig
from repro.synth.from_tree import fringe_dt_to_aig, tree_to_aig
from repro.utils.rng import rng_for

CASES = [30, 50, 60, 74, 80, 90]


def _run(samples):
    suite = build_suite()
    per_method = {m: [] for m in ("dt", "fringe", "nn", "lutnet",
                                  "ensemble")}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        rng = rng_for("bench-team3", idx)
        tree = DecisionTree(max_depth=8).fit(problem.train.X,
                                             problem.train.y)
        dt_aig = tree_to_aig(tree).extract_cone()
        per_method["dt"].append(
            (aig_accuracy(dt_aig, problem.test), dt_aig.num_ands)
        )
        fr = FringeDT(max_depth=8, max_iterations=5).fit(
            problem.train.X, problem.train.y
        )
        fr_aig = fringe_dt_to_aig(fr).extract_cone()
        per_method["fringe"].append(
            (aig_accuracy(fr_aig, problem.test), fr_aig.num_ands)
        )
        if problem.n_inputs <= 64:
            mlp = MLP(hidden_sizes=(24,), activation="sigmoid", rng=rng)
            mlp.fit(problem.train.X.astype(float), problem.train.y,
                    epochs=15)
            mlp.prune_to_fanin(8, problem.train.X.astype(float),
                               problem.train.y, rounds=2,
                               retrain_epochs=5)
            nn_aig = mlp_to_aig(mlp).extract_cone()
            per_method["nn"].append(
                (aig_accuracy(nn_aig, problem.test), nn_aig.num_ands)
            )
        net = LUTNetwork(n_layers=3, luts_per_layer=64, lut_size=4,
                         rng=rng).fit(problem.train.X, problem.train.y)
        lut_aig = lutnet_to_aig(net).extract_cone()
        per_method["lutnet"].append(
            (aig_accuracy(lut_aig, problem.test), lut_aig.num_ands)
        )
        solution = get_flow("team03").run(problem, effort="small")
        score = evaluate_solution(problem, solution)
        per_method["ensemble"].append(
            (score.test_accuracy, score.num_ands)
        )
    return per_method


def test_table4_team3_methods(benchmark, scale):
    samples = min(scale["samples"], 800)
    per_method = benchmark.pedantic(
        lambda: _run(samples), rounds=1, iterations=1
    )
    echo("\n=== Table IV: Team 3 method comparison ===")
    averages = {}
    for method, entries in per_method.items():
        accs = [a for a, _ in entries]
        sizes = [s for _, s in entries]
        averages[method] = (float(np.mean(accs)), float(np.mean(sizes)))
        echo(f"  {method:9s} acc {100 * averages[method][0]:6.2f}%  "
              f"avg size {averages[method][1]:9.1f}")

    # Fr-DT at least matches plain DT (paper: +5 points).
    assert averages["fringe"][0] >= averages["dt"][0] - 0.02
    # LUT-Net trails both tree methods (paper: worst of the four).
    assert averages["lutnet"][0] <= averages["fringe"][0] + 0.02
    # Ensemble competitive with its best member.
    best_member = max(
        averages[m][0] for m in ("dt", "fringe", "nn", "lutnet")
    )
    assert averages["ensemble"][0] >= best_member - 0.05
