"""Fig. 21: Team 4's per-benchmark validation accuracy and node count.

Paper shape: the subspace-expansion flow achieves high accuracy on
most benchmarks while the node count stays under 5000 by
construction (the expanded PLA covers only the selected k-feature
hypercube); it fails (near-chance) on cases where feature pruning
discards the signal.  We run the flow over the scaled suite and assert
legality everywhere plus clearly-better-than-chance behaviour on the
feature-selectable cases (comparator / image-like).
"""

from _report import echo
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import get_flow

CASES = [30, 50, 74, 80, 90]


def _run(samples):
    suite = build_suite()
    scores = {}
    for idx in CASES:
        problem = make_problem(suite[idx], n_train=samples,
                               n_valid=samples, n_test=samples)
        solution = get_flow("team04").run(problem, effort="small")
        scores[suite[idx].name] = evaluate_solution(problem, solution)
    return scores


def test_fig21_team4(benchmark, scale):
    # The subspace-expansion flow needs a few hundred samples per
    # selected feature group to rank features reliably; floor at 600.
    samples = max(min(scale["samples"], 800), 600)
    scores = benchmark.pedantic(
        lambda: _run(samples), rounds=1, iterations=1
    )
    echo("\n=== Fig. 21: Team 4 accuracy / node count ===")
    for name, s in scores.items():
        echo(f"  {name}: valid {100 * s.valid_accuracy:6.2f}%  "
              f"test {100 * s.test_accuracy:6.2f}%  "
              f"nodes {s.num_ands:5d}")
    for name, s in scores.items():
        assert s.legal, name
    # Feature-selection-friendly cases clearly beat chance.
    assert scores["ex30"].test_accuracy > 0.6
    assert scores["ex80"].test_accuracy > 0.7
