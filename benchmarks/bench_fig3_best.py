"""Fig. 3: maximum accuracy achieved on each benchmark.

Paper shape: "While most of the benchmarks achieved a 100% accuracy,
several benchmarks only achieved close to 50%" — the hard tail being
wide multiplier/sqrt bits and the CIFAR group comparisons.  We assert
the same bimodality: some benchmarks saturate (>=95%) while at least
one stays below 75%, and the easy group outnumbers a chance-level
middle.
"""

from _report import echo
from repro.analysis import per_benchmark_best


def test_fig3_max_accuracy(benchmark, contest_run, scale):
    best = benchmark.pedantic(
        lambda: per_benchmark_best(contest_run.scores_by_team),
        rounds=1, iterations=1,
    )
    echo(f"\n=== Fig. 3: best accuracy per benchmark "
          f"(scale={scale['name']}) ===")
    for name in sorted(best):
        bar = "#" * int((best[name] - 0.5) * 40) if best[name] > 0.5 else ""
        echo(f"  {name}: {100 * best[name]:6.2f}%  {bar}")

    values = list(best.values())
    saturated = sum(1 for v in values if v >= 0.95)
    hard = sum(1 for v in values if v < 0.75)
    echo(f"  saturated (>=95%): {saturated}/{len(values)}, "
          f"hard (<75%): {hard}/{len(values)}")
    assert saturated >= len(values) * 0.3, "many benchmarks saturate"
    assert hard >= 1, "a hard tail exists"
    # Nothing below chance.
    assert min(values) > 0.45
