"""Serving layer: coalesced vs single-row throughput, cold vs warm.

Two claims are measured on a real store (a mini contest run with kept
solutions):

1. *Coalescing pays.*  N single-row requests answered one at a time
   through the serving stack (sequential awaits: every request is its
   own engine pass, like clients trickling in) versus the same N
   requests arriving concurrently and coalesced by the microbatcher
   into grouped engine passes.  Coalescing amortizes packing and
   per-level dispatch, so batched throughput must be >= 5x the
   single-row request loop — asserted when the box has >= 2 cores
   (wall-clock asserts flake on starved single-core CI runners),
   reported always.  The raw engine-level gain (per-row ``predict``
   vs one ``predict_grouped`` pass, no event loop in the way) is
   reported alongside.

2. *Compile once, serve forever.*  The first ``load`` of a model pays
   the levelized compile (cold); subsequent loads are an LRU hit
   (warm).  The warm path must be faster; both are reported.

Bit-identity of every serving path against direct ``AIG.simulate`` is
asserted unconditionally — speed claims never excuse a wrong bit.
"""

import asyncio
import os
import time

import numpy as np
import pytest

from _report import echo

from repro.aig.aiger import read_aag
from repro.runner import contest_tasks, run_contest_tasks
from repro.runner.store import RunStore
from repro.serve import MicroBatcher, ModelStore

BENCHMARKS = [30, 74]
FLOWS = ["team01", "team10"]
SAMPLES = 64
N_ROWS = 512
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """One contest run with kept solutions, shared by both benches."""
    out_dir = tmp_path_factory.mktemp("serve-bench") / "run"
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=out_dir, keep_solutions=True)
    return out_dir


def _rows(n, width, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n, width)).astype(np.uint8)


def test_serve_coalescing_speedup_and_bit_identity(store_dir, benchmark):
    store = ModelStore(store_dir)
    name = "ex74"
    circuit = store.load(name)
    rows = _rows(N_ROWS, circuit.n_inputs, seed=1)

    # Ground truth: the stored winner simulated directly.
    aig = read_aag(RunStore(store_dir).solution_path(store.info(name).key))
    expected = aig.simulate(rows)

    # --- single-row request loop: sequential awaits ------------------
    async def drive_singles():
        batcher = MicroBatcher(store, tick_s=0.0, max_batch=N_ROWS)
        outs = []
        for i in range(N_ROWS):
            outs.append(await batcher.predict(name, rows[i]))
        return batcher, outs

    start = time.perf_counter()
    single_batcher, singles = asyncio.run(drive_singles())
    single_s = time.perf_counter() - start

    # --- coalesced: the same requests arriving concurrently ----------
    async def drive_coalesced():
        batcher = MicroBatcher(store, tick_s=0.001, max_batch=N_ROWS)
        outs = await asyncio.gather(
            *(batcher.predict(name, rows[i]) for i in range(N_ROWS))
        )
        return batcher, outs

    start = time.perf_counter()
    batcher, coalesced = asyncio.run(drive_coalesced())
    coalesced_s = time.perf_counter() - start

    # --- raw engine-level coalescing (no event loop in the way) ------
    start = time.perf_counter()
    per_row = [circuit.predict(rows[i]) for i in range(N_ROWS)]
    per_row_s = time.perf_counter() - start
    start = time.perf_counter()
    grouped = circuit.predict_grouped(list(rows))
    grouped_s = time.perf_counter() - start

    # --- bit-identity: unconditional ---------------------------------
    for i in range(N_ROWS):
        assert np.array_equal(singles[i][0], expected[i])
        assert np.array_equal(coalesced[i][0], expected[i])
        assert np.array_equal(per_row[i][0], expected[i])
        assert np.array_equal(grouped[i][0], expected[i])

    speedup = single_s / coalesced_s
    engine_speedup = per_row_s / grouped_s
    cores = os.cpu_count() or 1
    echo(f"\n=== Serving throughput ({name}, {N_ROWS} single-row "
         f"requests, {cores} cores) ===")
    echo(f"  sequential requests: {single_s:8.4f} s "
         f"({N_ROWS / single_s:10.0f} rows/s, "
         f"{single_batcher.batches} engine passes)")
    echo(f"  coalesced burst:     {coalesced_s:8.4f} s "
         f"({N_ROWS / coalesced_s:10.0f} rows/s, "
         f"{batcher.batches} engine passes)  {speedup:.1f}x")
    echo(f"  engine-level: per-row {per_row_s:.4f} s vs one grouped "
         f"pass {grouped_s:.4f} s  ({engine_speedup:.0f}x)")
    echo(f"  largest coalesced batch: {batcher.max_coalesced} requests")
    # Tracked by the nightly regression gate (BENCH_baseline.json):
    # the steady-state serving cost of one coalesced engine pass.
    benchmark.pedantic(
        lambda: circuit.predict_grouped(list(rows)), rounds=3, iterations=1
    )

    # Structural coalescing guarantee: a concurrent burst must land in
    # far fewer engine passes than requests (not a timing property).
    assert batcher.batches < N_ROWS / 4, (
        "microbatcher failed to coalesce: "
        f"{batcher.batches} passes for {N_ROWS} requests"
    )
    assert single_batcher.batches == N_ROWS  # sequential = no coalescing
    if cores >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"coalesced speedup {speedup:.1f}x < {MIN_SPEEDUP}x "
            f"on {cores} cores"
        )
        assert engine_speedup >= MIN_SPEEDUP
    else:
        echo(f"  [{cores}-core box: {MIN_SPEEDUP}x wall-clock asserts "
             f"skipped; measured {speedup:.1f}x serving, "
             f"{engine_speedup:.0f}x engine]")


def test_serve_cold_vs_warm_compile(store_dir):
    probe_rows = _rows(8, 16, seed=2)

    # Cold: fresh store, first load pays parse + levelized compile.
    cold_store = ModelStore(store_dir)
    start = time.perf_counter()
    cold_out = cold_store.load("ex74").predict(probe_rows)
    cold_s = time.perf_counter() - start
    assert cold_store.stats()["misses"] == 1

    # Warm: the LRU hands back the compiled plan.
    start = time.perf_counter()
    warm_out = cold_store.load("ex74").predict(probe_rows)
    warm_s = time.perf_counter() - start
    assert cold_store.stats()["hits"] == 1

    assert np.array_equal(cold_out, warm_out)  # unconditional
    cores = os.cpu_count() or 1
    echo(f"\n=== Cold vs warm model load (ex74, {cores} cores) ===")
    echo(f"  cold (parse+compile+predict): {cold_s * 1e3:8.3f} ms")
    echo(f"  warm (LRU hit+predict):       {warm_s * 1e3:8.3f} ms  "
         f"({cold_s / max(warm_s, 1e-9):.1f}x)")
    if cores >= 2:
        assert warm_s < cold_s, (
            f"LRU hit ({warm_s * 1e3:.3f} ms) not faster than compile "
            f"({cold_s * 1e3:.3f} ms)"
        )
