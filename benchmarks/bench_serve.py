"""Serving layer: coalesced vs single-row throughput, cold vs warm,
worker-pool scaling and saturation behavior under load.

Four claims are measured on a real store (a mini contest run with kept
solutions):

1. *Coalescing pays.*  N single-row requests answered one at a time
   through the serving stack (sequential awaits: every request is its
   own engine pass, like clients trickling in) versus the same N
   requests arriving concurrently and coalesced by the microbatcher
   into grouped engine passes.  Coalescing amortizes packing and
   per-level dispatch, so batched throughput must be >= 5x the
   single-row request loop — asserted when the box has >= 2 cores
   (wall-clock asserts flake on starved single-core CI runners),
   reported always.  The raw engine-level gain (per-row ``predict``
   vs one ``predict_grouped`` pass, no event loop in the way) is
   reported alongside.

2. *Compile once, serve forever.*  The first ``load`` of a model pays
   the levelized compile (cold); subsequent loads are an LRU hit
   (warm).  The warm path must be faster; both are reported.

3. *Workers scale the engine off the loop.*  The same concurrent load
   driven over real HTTP against ``workers=0`` (engine passes inline
   on the event loop) and a worker pool.  On a box with >= 4 cores the
   pooled server must reach >= 2x the single-process throughput;
   measured numbers are reported on every box.

4. *Saturation sheds, never strands.*  Past ``max_queued_rows`` the
   server answers 503 (with ``Retry-After``); every request still gets
   *an* answer, and every 200 is bit-exact.

Bit-identity of every serving path against direct ``AIG.simulate`` is
asserted unconditionally — speed claims never excuse a wrong bit.

Run standalone for the load-generator mode (sweeps concurrency to
find the saturation knee)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serve.py \
        --load --workers 4 --requests 512
"""

import asyncio
import collections
import json
import os
import time

import numpy as np
import pytest

from _report import echo
from repro.aig.aiger import read_aag
from repro.runner import contest_tasks, run_contest_tasks
from repro.runner.store import RunStore
from repro.serve import (
    MicroBatcher,
    ModelStore,
    ServeApp,
    ServerHandle,
    WorkerPool,
)

BENCHMARKS = [30, 74]
FLOWS = ["team01", "team10"]
SAMPLES = 64
N_ROWS = 512
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """One contest run with kept solutions, shared by both benches."""
    out_dir = tmp_path_factory.mktemp("serve-bench") / "run"
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=out_dir, keep_solutions=True)
    return out_dir


def _rows(n, width, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n, width)).astype(np.uint8)


def test_serve_coalescing_speedup_and_bit_identity(store_dir, benchmark):
    store = ModelStore(store_dir)
    name = "ex74"
    circuit = store.load(name)
    rows = _rows(N_ROWS, circuit.n_inputs, seed=1)

    # Ground truth: the stored winner simulated directly.
    aig = read_aag(RunStore(store_dir).solution_path(store.info(name).key))
    expected = aig.simulate(rows)

    # --- single-row request loop: sequential awaits ------------------
    async def drive_singles():
        batcher = MicroBatcher(store, tick_s=0.0, max_batch=N_ROWS)
        outs = []
        for i in range(N_ROWS):
            outs.append(await batcher.predict(name, rows[i]))
        return batcher, outs

    start = time.perf_counter()
    single_batcher, singles = asyncio.run(drive_singles())
    single_s = time.perf_counter() - start

    # --- coalesced: the same requests arriving concurrently ----------
    async def drive_coalesced():
        batcher = MicroBatcher(store, tick_s=0.001, max_batch=N_ROWS)
        outs = await asyncio.gather(
            *(batcher.predict(name, rows[i]) for i in range(N_ROWS))
        )
        return batcher, outs

    start = time.perf_counter()
    batcher, coalesced = asyncio.run(drive_coalesced())
    coalesced_s = time.perf_counter() - start

    # --- raw engine-level coalescing (no event loop in the way) ------
    start = time.perf_counter()
    per_row = [circuit.predict(rows[i]) for i in range(N_ROWS)]
    per_row_s = time.perf_counter() - start
    start = time.perf_counter()
    grouped = circuit.predict_grouped(list(rows))
    grouped_s = time.perf_counter() - start

    # --- bit-identity: unconditional ---------------------------------
    for i in range(N_ROWS):
        assert np.array_equal(singles[i][0], expected[i])
        assert np.array_equal(coalesced[i][0], expected[i])
        assert np.array_equal(per_row[i][0], expected[i])
        assert np.array_equal(grouped[i][0], expected[i])

    speedup = single_s / coalesced_s
    engine_speedup = per_row_s / grouped_s
    cores = os.cpu_count() or 1
    echo(f"\n=== Serving throughput ({name}, {N_ROWS} single-row "
         f"requests, {cores} cores) ===")
    echo(f"  sequential requests: {single_s:8.4f} s "
         f"({N_ROWS / single_s:10.0f} rows/s, "
         f"{single_batcher.batches} engine passes)")
    echo(f"  coalesced burst:     {coalesced_s:8.4f} s "
         f"({N_ROWS / coalesced_s:10.0f} rows/s, "
         f"{batcher.batches} engine passes)  {speedup:.1f}x")
    echo(f"  engine-level: per-row {per_row_s:.4f} s vs one grouped "
         f"pass {grouped_s:.4f} s  ({engine_speedup:.0f}x)")
    echo(f"  largest coalesced batch: {batcher.max_coalesced} requests")
    # Tracked by the nightly regression gate (BENCH_baseline.json):
    # the steady-state serving cost of one coalesced engine pass.
    benchmark.pedantic(
        lambda: circuit.predict_grouped(list(rows)), rounds=3, iterations=1
    )

    # Structural coalescing guarantee: a concurrent burst must land in
    # far fewer engine passes than requests (not a timing property).
    assert batcher.batches < N_ROWS / 4, (
        "microbatcher failed to coalesce: "
        f"{batcher.batches} passes for {N_ROWS} requests"
    )
    assert single_batcher.batches == N_ROWS  # sequential = no coalescing
    if cores >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"coalesced speedup {speedup:.1f}x < {MIN_SPEEDUP}x "
            f"on {cores} cores"
        )
        assert engine_speedup >= MIN_SPEEDUP
    else:
        echo(f"  [{cores}-core box: {MIN_SPEEDUP}x wall-clock asserts "
             f"skipped; measured {speedup:.1f}x serving, "
             f"{engine_speedup:.0f}x engine]")


def test_serve_cold_vs_warm_compile(store_dir):
    probe_rows = _rows(8, 16, seed=2)

    # Cold: fresh store, first load pays parse + levelized compile.
    cold_store = ModelStore(store_dir)
    start = time.perf_counter()
    cold_out = cold_store.load("ex74").predict(probe_rows)
    cold_s = time.perf_counter() - start
    assert cold_store.stats()["misses"] == 1

    # Warm: the LRU hands back the compiled plan.
    start = time.perf_counter()
    warm_out = cold_store.load("ex74").predict(probe_rows)
    warm_s = time.perf_counter() - start
    assert cold_store.stats()["hits"] == 1

    assert np.array_equal(cold_out, warm_out)  # unconditional
    cores = os.cpu_count() or 1
    echo(f"\n=== Cold vs warm model load (ex74, {cores} cores) ===")
    echo(f"  cold (parse+compile+predict): {cold_s * 1e3:8.3f} ms")
    echo(f"  warm (LRU hit+predict):       {warm_s * 1e3:8.3f} ms  "
         f"({cold_s / max(warm_s, 1e-9):.1f}x)")
    if cores >= 2:
        assert warm_s < cold_s, (
            f"LRU hit ({warm_s * 1e3:.3f} ms) not faster than compile "
            f"({cold_s * 1e3:.3f} ms)"
        )


# ---------------------------------------------------------------------------
# Load generator: concurrent keep-alive clients over real HTTP
# ---------------------------------------------------------------------------


def _predict_request_bytes(name, row):
    body = json.dumps(
        {"row": [int(b) for b in row]}, sort_keys=True
    ).encode("utf-8")
    head = (
        f"POST /predict/{name} HTTP/1.1\r\n"
        f"Host: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


async def _read_http_response(reader):
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed mid-response")
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def _drive_load(host, port, name, rows, n_requests, concurrency):
    """``concurrency`` keep-alive connections pulling ``n_requests``
    single-row predicts off a shared work list; request *i* always
    carries row ``i % len(rows)``, so every answer is checkable."""
    payloads = [_predict_request_bytes(name, row) for row in rows]
    results = [None] * n_requests
    work = iter(range(n_requests))

    async def client():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in work:
                start = time.perf_counter()
                writer.write(payloads[i % len(payloads)])
                await writer.drain()
                status, headers, body = await _read_http_response(reader)
                results[i] = (
                    status, headers, json.loads(body),
                    time.perf_counter() - start,
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    await asyncio.gather(*(client() for _ in range(concurrency)))
    return results


def _summarize_load(results, rows, expected):
    """Verify + condense one load run.  Asserts, unconditionally:
    no request stranded, every 200 bit-exact, every 503 retryable."""
    statuses = collections.Counter()
    latencies = []
    for i, result in enumerate(results):
        assert result is not None, f"request {i} got no answer (stranded)"
        status, headers, body, latency = result
        statuses[status] += 1
        latencies.append(latency)
        if status == 200:
            got = np.asarray(body["outputs"], dtype=np.uint8)
            assert np.array_equal(got[0], expected[i % len(rows)]), (
                f"request {i}: served bits differ from AIG.simulate"
            )
        elif status == 503:
            assert "error" in body
            if "saturated" in body["error"]:
                assert int(headers.get("retry-after", "0")) >= 1
        else:
            raise AssertionError(f"request {i}: unexpected {status}: {body}")
    latencies.sort()

    def quantile(q):
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "statuses": dict(statuses),
        "p50_ms": quantile(0.50) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "total_s": None,  # filled by callers that timed the run
    }


def _run_load(handle, name, rows, expected, n_requests, concurrency):
    start = time.perf_counter()
    results = asyncio.run(
        _drive_load(handle.host, handle.port, name, rows,
                    n_requests, concurrency)
    )
    elapsed = time.perf_counter() - start
    summary = _summarize_load(results, rows, expected)
    summary["total_s"] = elapsed
    summary["rps"] = n_requests / elapsed
    return summary


# ---------------------------------------------------------------------------
# Worker-pool scaling + saturation benches
# ---------------------------------------------------------------------------

LOAD_REQUESTS = 192
LOAD_CONCURRENCY = 16
MIN_POOL_SPEEDUP = 2.0
P99_BUDGET_MS = 1000.0


def test_serve_worker_pool_scaling(store_dir, benchmark):
    """HTTP throughput, workers=0 vs a pool, same load either way."""
    cores = os.cpu_count() or 1
    pool_workers = min(4, max(2, cores))
    store = ModelStore(store_dir)
    name = "ex74"
    aig = read_aag(RunStore(store_dir).solution_path(store.info(name).key))
    rows = _rows(64, 16, seed=3)
    expected = aig.simulate(rows)

    summaries = {}
    for n_workers in (0, pool_workers):
        app = ServeApp(
            ModelStore(store_dir), tick_s=0.002, workers=n_workers
        )
        with ServerHandle(app) as handle:
            _run_load(handle, name, rows, expected, 32, 4)  # warm-up
            summaries[n_workers] = _run_load(
                handle, name, rows, expected,
                LOAD_REQUESTS, LOAD_CONCURRENCY,
            )
            if n_workers:
                assert app.pool is not None
                assert app.pool.stats()["dispatches"] >= 1

    echo(f"\n=== Worker-pool scaling (ex74, {LOAD_REQUESTS} requests, "
         f"{LOAD_CONCURRENCY} connections, {cores} cores) ===")
    for n_workers, summary in summaries.items():
        tier = "in-process" if n_workers == 0 else f"{n_workers} workers"
        echo(f"  {tier:12s} {summary['rps']:8.0f} req/s   "
             f"p50 {summary['p50_ms']:7.2f} ms   "
             f"p99 {summary['p99_ms']:7.2f} ms")
    speedup = summaries[pool_workers]["rps"] / summaries[0]["rps"]
    echo(f"  pool vs in-process: {speedup:.2f}x")

    # The one pool number the nightly gate tracks: a warm worker
    # dispatch round-trip (IPC + engine pass on a served batch).
    with WorkerPool(1, sim_backend=store.sim_backend) as wpool:
        wpool.warm_up(timeout=120)
        bundle = store.bundle(name)
        mat = _rows(256, 16, seed=4)
        warm = wpool.predict_sync(bundle.digest, bundle.aag_text, mat)
        assert np.array_equal(warm, aig.simulate(mat))  # unconditional
        benchmark.pedantic(
            lambda: wpool.predict_sync(bundle.digest, bundle.aag_text, mat),
            rounds=3, iterations=1,
        )

    if cores >= 4:
        assert speedup >= MIN_POOL_SPEEDUP, (
            f"worker pool {speedup:.2f}x < {MIN_POOL_SPEEDUP}x "
            f"on {cores} cores"
        )
        assert summaries[pool_workers]["p99_ms"] <= P99_BUDGET_MS, (
            f"pooled p99 {summaries[pool_workers]['p99_ms']:.1f} ms "
            f"over the {P99_BUDGET_MS:.0f} ms budget"
        )
    else:
        echo(f"  [{cores}-core box: {MIN_POOL_SPEEDUP}x / p99 wall-clock "
             f"asserts skipped; measured {speedup:.2f}x]")


def test_serve_saturation_sheds_load_cleanly(store_dir):
    """Past the knee: 503s appear, nothing strands, bits stay exact."""
    store = ModelStore(store_dir)
    name = "ex74"
    aig = read_aag(RunStore(store_dir).solution_path(store.info(name).key))
    rows = _rows(32, 16, seed=5)
    expected = aig.simulate(rows)

    # Queue bounded far below the offered load: with 24 connections
    # hammering an 8-row admission cap across a 20 ms tick, rejects
    # are structurally guaranteed, not a timing accident.
    app = ServeApp(
        ModelStore(store_dir), tick_s=0.02, max_queued_rows=8
    )
    with ServerHandle(app) as handle:
        summary = _run_load(handle, name, rows, expected, 144, 24)
        stats = app.batcher.stats()

    served = summary["statuses"].get(200, 0)
    shed = summary["statuses"].get(503, 0)
    echo("\n=== Saturation behavior (8-row cap, 24 connections) ===")
    echo(f"  {served} served / {shed} shed (503) of 144; "
         f"p99 {summary['p99_ms']:.1f} ms; "
         f"batcher saw {stats['rejected_saturated']} saturated rejects")
    assert served + shed == 144  # every request answered
    assert shed > 0, "offered load never hit the admission cap"
    assert served > 0, "backpressure starved the queue entirely"
    assert stats["rejected_saturated"] == shed
    assert stats["rows_served"] == served


# ---------------------------------------------------------------------------
# Standalone load-generator mode: sweep concurrency, find the knee
# ---------------------------------------------------------------------------


def _build_mini_store(root):
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=root, keep_solutions=True)
    return root


def _load_main(argv=None):
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="bench_serve load generator (see module docstring)"
    )
    parser.add_argument("--load", action="store_true",
                        help="run the load sweep (the only mode)")
    parser.add_argument("--store", default=None,
                        help="existing run/bundle dir (default: build a "
                             "mini contest run in a temp dir)")
    parser.add_argument("--model", default="ex74")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--requests", type=int, default=512,
                        help="requests per concurrency level")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="fixed connection count (default: sweep "
                             "1..64 and report the knee)")
    parser.add_argument("--max-queued-rows", type=int, default=None)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--tick-ms", type=float, default=2.0)
    args = parser.parse_args(argv)
    if not args.load:
        parser.error("this entry point only implements --load")

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        store_root = Path(args.store) if args.store else \
            _build_mini_store(Path(tmp) / "run")
        store = ModelStore(store_root)
        name = store.resolve(args.model)
        info = store.info(name)
        rows = _rows(64, info.n_inputs, seed=7)
        expected = store.load(name).predict(rows)

        app = ServeApp(
            ModelStore(store_root), tick_s=args.tick_ms / 1000.0,
            workers=args.workers, max_queued_rows=args.max_queued_rows,
            deadline_ms=args.deadline_ms,
        )
        levels = [args.concurrency] if args.concurrency else \
            [1, 2, 4, 8, 16, 32, 64]
        tier = f"{args.workers} workers" if args.workers else "in-process"
        print(f"load sweep: model {name!r}, {args.requests} requests per "
              f"level, {tier}, {os.cpu_count()} cores")
        print(f"{'conc':>6} {'req/s':>10} {'p50 ms':>9} {'p99 ms':>9} "
              f"{'200':>6} {'503':>6}")
        knee = None
        previous_rps = 0.0
        with ServerHandle(app) as handle:
            _run_load(handle, name, rows, expected, 32, 2)  # warm-up
            for concurrency in levels:
                summary = _run_load(
                    handle, name, rows, expected, args.requests, concurrency
                )
                statuses = summary["statuses"]
                print(f"{concurrency:>6} {summary['rps']:>10.0f} "
                      f"{summary['p50_ms']:>9.2f} {summary['p99_ms']:>9.2f} "
                      f"{statuses.get(200, 0):>6} {statuses.get(503, 0):>6}")
                # The knee: the first level that buys < 5% throughput.
                if knee is None and previous_rps and \
                        summary["rps"] < previous_rps * 1.05:
                    knee = concurrency
                previous_rps = summary["rps"]
        if len(levels) > 1:
            print(f"saturation knee: ~{knee or levels[-1]} connections "
                  f"(first level adding < 5% throughput)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_load_main())
